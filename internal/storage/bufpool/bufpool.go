// Package bufpool provides a sharded LRU buffer pool over a disk.Manager.
// Pages hash by PageID onto N shards (N a power of two), each with its own
// mutex, LRU list and frame map, so concurrent readers of different pages
// never contend on one lock. Pages are pinned while in use; unpinned pages
// are eviction candidates. Dirty pages are written back on eviction (steal
// mode only) and on Flush.
//
// Concurrency model: pin counts are atomic, and each frame carries a
// shared/exclusive latch that a disk load holds exclusively — a Fetch that
// hits a frame mid-load blocks on the latch until the content is ready,
// while many readers of a resident hot page share it freely. Page content
// mutation is still serialised by the engine layer (db.mu); the pool's job
// is to make the read path scale with cores.
package bufpool

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"xomatiq/internal/obs"
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/page"
)

// ErrNoCleanFrames is returned in no-steal mode when every unpinned frame
// of a shard is dirty; the caller must checkpoint (flush) and retry.
var ErrNoCleanFrames = errors.New("bufpool: no clean frames to evict (checkpoint needed)")

// minShardCapacity is the smallest per-shard frame budget worth sharding
// for: below it a pool keeps a single shard so the exact capacity and
// eviction semantics of small (test-sized) pools are preserved.
const minShardCapacity = 64

// maxShards caps the shard count; 16 shards cover the core counts this
// engine targets without fragmenting small pools.
const maxShards = 16

// Pool caches pages of one database file.
type Pool struct {
	mgr      *disk.Manager
	capacity int
	shards   []*shard
	mask     uint32

	// MVCC state (see mvcc.go): the published epoch, and a refcount of
	// readers pinned per epoch that holds retained page versions alive.
	epoch atomic.Uint64
	pinMu sync.Mutex
	pins  map[uint64]int
}

// shard is one lock domain of the pool: a frame map, an LRU list and the
// counters the engine reads. Pages map to shards by PageID & mask.
type shard struct {
	mu        sync.Mutex
	mgr       *disk.Manager
	capacity  int
	frames    map[disk.PageID]*Frame
	lru       *list.List // of *Frame; front = most recently used
	noSteal   bool
	mutations uint64
	// versions holds retained pre-images of pages mutated after an epoch
	// was published, ascending by upTo. Guarded by vmu, separate from mu
	// so version lookups never contend with frame-map traffic.
	vmu      sync.RWMutex
	versions map[disk.PageID][]pageVersion
	// m holds the shard's cache-effectiveness counters. Always non-nil:
	// New gives each shard a private block, and BindMetrics swaps in the
	// engine registry's blocks, so the hot path increments without a nil
	// check. Loads through the pointer race benignly with BindMetrics
	// only during pool construction, before any concurrent use.
	m *obs.PoolShardMetrics
}

// Frame is a cached page. Callers access the page through Page() and must
// hold a pin while doing so.
type Frame struct {
	id      disk.PageID
	buf     []byte
	pg      *page.Page
	pins    atomic.Int32
	dirty   bool // guarded by the owning shard's mu
	lruElem *list.Element
	shard   *shard

	// latch is held exclusively while the frame's content is loaded from
	// disk; a hit on an in-flight frame takes it shared to wait for the
	// load (and its verdict in loadErr) before returning. loaded flips
	// true once the content is known good, letting hits on resident pages
	// skip the latch entirely.
	latch   sync.RWMutex
	loadErr error
	loaded  atomic.Bool

	// born is epoch+1 at Allocate time for fresh pages (no published
	// epoch has seen them, so FetchMut skips pre-image retention), and 0
	// for frames loaded from disk. Only the single writer reads it.
	born uint64
}

// ID reports the page id the frame holds.
func (f *Frame) ID() disk.PageID { return f.id }

// Page returns the slotted-page view of the frame.
func (f *Frame) Page() *page.Page { return f.pg }

// shardCount picks a power-of-two shard count for a pool of the given
// capacity: enough shards to spread the machine's cores, but never so
// many that a shard drops below minShardCapacity frames.
func shardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards {
		n <<= 1
	}
	for n > 1 && capacity/n < minShardCapacity {
		n >>= 1
	}
	return n
}

// New creates a pool holding at most capacity pages in total.
func New(mgr *disk.Manager, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity)
	p := &Pool{
		mgr:      mgr,
		capacity: capacity,
		shards:   make([]*shard, n),
		mask:     uint32(n - 1),
		pins:     make(map[uint64]int),
	}
	per := capacity / n
	extra := capacity % n
	for i := range p.shards {
		c := per
		if i < extra {
			c++
		}
		p.shards[i] = &shard{
			mgr:      mgr,
			capacity: c,
			frames:   make(map[disk.PageID]*Frame),
			lru:      list.New(),
			versions: make(map[disk.PageID][]pageVersion),
			m:        &obs.PoolShardMetrics{},
		}
	}
	return p
}

// BindMetrics points each shard's counters at the given registry group
// so pool activity shows up in engine snapshots. Must be called before
// the pool sees concurrent use (the engine calls it at open time);
// counts recorded before the bind stay on the discarded private blocks.
func (p *Pool) BindMetrics(pm *obs.PoolMetrics) {
	handles := pm.Bind(len(p.shards))
	for i, s := range p.shards {
		s.m = handles[i]
	}
}

// shardFor maps a page id to its shard. The id is multiplied by a large
// odd constant first so chained heap pages (consecutive ids) spread over
// every shard instead of marching through them in lockstep.
func (p *Pool) shardFor(id disk.PageID) *shard {
	return p.shards[(uint32(id)*0x9E3779B1)&p.mask]
}

// ShardCount reports the number of lock shards (stats, tests).
func (p *Pool) ShardCount() int { return len(p.shards) }

// Stats is a snapshot of the pool's hit/miss/eviction counters.
type Stats struct {
	Shards    int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the pool's cache-effectiveness counters.
func (p *Pool) Stats() Stats {
	s := Stats{Shards: len(p.shards)}
	for _, sh := range p.shards {
		s.Hits += sh.m.Hits.Load()
		s.Misses += sh.m.Misses.Load()
		s.Evictions += sh.m.Evictions.Load()
	}
	return s
}

// Fetch pins the page with the given id, reading it from disk on a miss.
// Callers must Unpin the frame when done. Safe for concurrent use: hits
// on resident pages take only the page's shard lock (and a shared latch
// acquire), and a miss reads from disk without holding any shard lock.
func (p *Pool) Fetch(id disk.PageID) (*Frame, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		f.pins.Add(1)
		s.lru.MoveToFront(f.lruElem)
		s.mu.Unlock()
		s.m.Hits.Inc()
		if f.loaded.Load() {
			return f, nil
		}
		// Wait out an in-flight load (shared latch) and check its verdict.
		f.latch.RLock()
		err := f.loadErr
		f.latch.RUnlock()
		if err != nil {
			f.pins.Add(-1)
			return nil, err
		}
		f.loaded.Store(true)
		return f, nil
	}
	s.m.Misses.Inc()
	f, err := s.newFrameLocked(id)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// Load outside the shard lock, holding the frame latch exclusively so
	// concurrent fetchers of the same page wait on the latch, not on the
	// whole shard.
	f.latch.Lock()
	s.mu.Unlock()
	rerr := p.mgr.ReadPage(id, f.buf)
	f.loadErr = rerr
	if rerr == nil {
		f.loaded.Store(true)
	}
	f.latch.Unlock()
	if rerr != nil {
		s.mu.Lock()
		if s.frames[id] == f {
			s.dropFrameLocked(f)
		}
		s.mu.Unlock()
		f.pins.Add(-1)
		return nil, rerr
	}
	return f, nil
}

// Allocate allocates a fresh page on disk, initialises it to the given
// kind and returns it pinned.
func (p *Pool) Allocate(kind page.Kind) (*Frame, error) {
	id, err := p.mgr.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	f.pg.Init(kind)
	f.loaded.Store(true)
	f.dirty = true
	f.born = p.epoch.Load() + 1
	s.mutations++
	return f, nil
}

// newFrameLocked makes room (evicting if needed), registers and pins a
// fresh frame for id. Caller holds s.mu.
func (s *shard) newFrameLocked(id disk.PageID) (*Frame, error) {
	if len(s.frames) >= s.capacity {
		if err := s.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, buf: make([]byte, page.Size), shard: s}
	f.pins.Store(1)
	f.pg = page.Wrap(f.buf)
	f.lruElem = s.lru.PushFront(f)
	s.frames[id] = f
	return f, nil
}

func (s *shard) dropFrameLocked(f *Frame) {
	s.lru.Remove(f.lruElem)
	delete(s.frames, f.id)
}

// evictLocked removes the least recently used evictable frame of the
// shard. In the default (steal) mode dirty frames are written back before
// eviction; in no-steal mode dirty frames are never evicted, preserving
// the WAL invariant that the data file holds exactly the last checkpoint
// state. Caller holds s.mu. The pin check is safe against the lock-free
// Unpin: pins only rise under s.mu, so a frame observed unpinned here
// cannot gain a pin before it leaves the map.
func (s *shard) evictLocked() error {
	sawDirty := false
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins.Load() > 0 {
			continue
		}
		if f.dirty {
			if s.noSteal {
				sawDirty = true
				continue
			}
			if err := s.mgr.WritePage(f.id, f.buf); err != nil {
				return err
			}
		}
		s.dropFrameLocked(f)
		s.m.Evictions.Inc()
		return nil
	}
	if sawDirty {
		return ErrNoCleanFrames
	}
	return fmt.Errorf("bufpool: all %d frames of shard pinned", s.capacity)
}

// SetNoSteal switches the eviction policy. The engine enables no-steal
// whenever a WAL governs the file.
func (p *Pool) SetNoSteal(v bool) {
	for _, s := range p.shards {
		s.mu.Lock()
		s.noSteal = v
		s.mu.Unlock()
	}
}

// DirtyCount reports the number of dirty frames (checkpoint policy input).
func (p *Pool) DirtyCount() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Mutations reports a monotonic count of page-dirtying events (Allocate
// and dirty Unpin). Unlike DirtyCount it also moves when an
// already-dirty page is modified again, so the engine can tell whether a
// failed statement touched any page at all.
func (p *Pool) Mutations() uint64 {
	var n uint64
	for _, s := range p.shards {
		s.mu.Lock()
		n += s.mutations
		s.mu.Unlock()
	}
	return n
}

// Unpin releases one pin on the frame; dirty marks it modified. The
// clean-release path is lock-free (one atomic decrement), so concurrent
// readers draining a scan never serialise on the shard.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		s := f.shard
		s.mu.Lock()
		f.dirty = true
		s.mutations++
		s.mu.Unlock()
	}
	if f.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("bufpool: unpin of unpinned page %d", f.id))
	}
}

// DiscardDirty drops every dirty frame without writing it back, so the
// next Fetch of those pages rereads the last checkpointed state from
// disk. This is the abort path of the no-steal/redo-only design: an
// uncommitted transaction lives only in dirty frames (and the WAL tail),
// so forgetting the frames forgets the transaction.
//
// A dirty frame that is still pinned is orphaned rather than an error:
// the only pins a rollback can race are snapshot readers finishing a
// page read (the writer holds none at abort time), and a reader's Frame
// pointer stays valid with its committed bytes after the frame leaves
// the map — the next Fetch simply builds a new frame from disk. The
// unused error return is kept for call-site compatibility.
func (p *Pool) DiscardDirty() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty {
				s.dropFrameLocked(f)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Flush writes every dirty frame back to disk and syncs the file. Shards
// flush in order and pages within a shard in map order; page writes are
// independent, so ordering affects only fault-injection op numbering.
func (p *Pool) Flush() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty {
				if err := p.mgr.WritePage(f.id, f.buf); err != nil {
					s.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return p.mgr.Sync()
}

// Len reports the number of cached frames (for tests and stats).
func (p *Pool) Len() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// FreePage drops the page from the cache and returns it to the disk free
// list. The page must not be pinned.
func (p *Pool) FreePage(id disk.PageID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if f.pins.Load() > 0 {
			s.mu.Unlock()
			return fmt.Errorf("bufpool: free pinned page %d", id)
		}
		s.dropFrameLocked(f)
	}
	s.mu.Unlock()
	return p.mgr.Free(id)
}
