package bufpool

import (
	"errors"
	"path/filepath"
	"testing"

	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/page"
)

func newPool(t *testing.T, capacity int) (*Pool, *disk.Manager) {
	t.Helper()
	mgr, err := disk.Open(filepath.Join(t.TempDir(), "pool.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return New(mgr, capacity), mgr
}

func TestAllocateFetch(t *testing.T) {
	p, _ := newPool(t, 4)
	f, err := p.Allocate(page.KindHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	slot, err := f.Page().Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)

	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f2.Page().Get(slot)
	if err != nil || string(rec) != "hello" {
		t.Errorf("Get = %q, %v", rec, err)
	}
	p.Unpin(f2, false)
}

func TestEvictionWritesBack(t *testing.T) {
	p, _ := newPool(t, 2)
	f, _ := p.Allocate(page.KindHeap)
	id := f.ID()
	slot, _ := f.Page().Insert([]byte("survives eviction"))
	p.Unpin(f, true)

	// Fill the pool past capacity to force eviction of id.
	var ids []disk.PageID
	for i := 0; i < 4; i++ {
		g, err := p.Allocate(page.KindHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, g.ID())
		p.Unpin(g, true)
	}
	if p.Len() > 2 {
		t.Errorf("pool holds %d frames, capacity 2", p.Len())
	}
	// Re-fetch the first page: must come back from disk intact.
	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f2.Page().Get(slot)
	if err != nil || string(rec) != "survives eviction" {
		t.Errorf("after eviction Get = %q, %v", rec, err)
	}
	p.Unpin(f2, false)
	_ = ids
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2)
	f1, _ := p.Allocate(page.KindHeap)
	f2, _ := p.Allocate(page.KindHeap)
	// Both pinned; a third allocation must fail.
	if _, err := p.Allocate(page.KindHeap); err == nil {
		t.Error("expected all-pinned error")
	}
	p.Unpin(f1, false)
	if _, err := p.Allocate(page.KindHeap); err != nil {
		t.Errorf("allocation after unpin: %v", err)
	}
	p.Unpin(f2, false)
}

func TestUnpinPanicsWhenNotPinned(t *testing.T) {
	p, _ := newPool(t, 2)
	f, _ := p.Allocate(page.KindHeap)
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	p.Unpin(f, false)
}

func TestFlushPersists(t *testing.T) {
	mgr, err := disk.Open(filepath.Join(t.TempDir(), "flush.db"))
	if err != nil {
		t.Fatal(err)
	}
	p := New(mgr, 8)
	f, _ := p.Allocate(page.KindHeap)
	id := f.ID()
	slot, _ := f.Page().Insert([]byte("durable"))
	p.Unpin(f, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read through a second pool over the same manager.
	p2 := New(mgr, 8)
	f2, err := p2.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f2.Page().Get(slot)
	if err != nil || string(rec) != "durable" {
		t.Errorf("after flush Get = %q, %v", rec, err)
	}
	p2.Unpin(f2, false)
	mgr.Close()
}

func TestFetchSharesFrame(t *testing.T) {
	p, _ := newPool(t, 4)
	f, _ := p.Allocate(page.KindHeap)
	id := f.ID()
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if f != g {
		t.Error("Fetch of cached page returned a different frame")
	}
	p.Unpin(f, false)
	p.Unpin(g, false)
}

func TestFreePage(t *testing.T) {
	p, mgr := newPool(t, 4)
	f, _ := p.Allocate(page.KindHeap)
	id := f.ID()
	if err := p.FreePage(id); err == nil {
		t.Error("FreePage of pinned page should fail")
	}
	p.Unpin(f, false)
	if err := p.FreePage(id); err != nil {
		t.Fatal(err)
	}
	// The freed page is reused by the next allocation.
	id2, err := mgr.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Errorf("freed page not recycled: got %d, want %d", id2, id)
	}
}

func TestCapacityFloor(t *testing.T) {
	p, _ := newPool(t, 0)
	if p.capacity != 1 {
		t.Errorf("capacity floor: got %d, want 1", p.capacity)
	}
}

func TestNoStealEviction(t *testing.T) {
	p, _ := newPool(t, 2)
	p.SetNoSteal(true)
	f1, _ := p.Allocate(page.KindHeap)
	p.Unpin(f1, true) // dirty, unpinned
	f2, _ := p.Allocate(page.KindHeap)
	p.Unpin(f2, true) // dirty, unpinned
	if p.DirtyCount() != 2 {
		t.Errorf("DirtyCount = %d, want 2", p.DirtyCount())
	}
	// Pool full of dirty frames: next allocation must fail with
	// ErrNoCleanFrames rather than writing uncommitted pages to disk.
	_, err := p.Allocate(page.KindHeap)
	if err == nil || !errors.Is(err, ErrNoCleanFrames) {
		t.Fatalf("expected ErrNoCleanFrames, got %v", err)
	}
	// Checkpoint clears dirtiness; allocation then succeeds.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Errorf("DirtyCount after Flush = %d", p.DirtyCount())
	}
	f3, err := p.Allocate(page.KindHeap)
	if err != nil {
		t.Fatalf("allocate after flush: %v", err)
	}
	p.Unpin(f3, false)
}
