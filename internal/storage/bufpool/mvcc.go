// Multi-version page store: the copy-on-write layer that lets snapshot
// readers run concurrently with the single writer.
//
// The pool carries a monotonically increasing epoch. Epoch E names the
// committed state after the E-th published generation; the writer works in
// generation E+1 and publishes it with PublishEpoch. Before the writer's
// first mutation of a page in a generation, FetchMut retains an immutable
// pre-image of the page tagged upTo=E, meaning "this copy is the page's
// content at every epoch <= E since the previous retained copy". A reader
// pinned at epoch e resolves a page id to the retained copy with the
// smallest upTo >= e, or, when none exists, to the live frame — which is
// then guaranteed untouched since epoch e.
//
// Torn reads of the live frame are impossible: FetchMut holds the frame
// latch exclusively across retention and mutation, and ReadAt re-checks
// the version map after acquiring the latch shared, so a reader either
// sees the pre-image or blocks until the writer's page mutation is done
// (and then finds the pre-image).
//
// Retained copies are dropped by gcVersions once no pinned epoch can need
// them (upTo < min over pinned epochs and the current epoch). Pins are a
// refcount per epoch; queries and transactions pin the epoch they read at.
package bufpool

import (
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/page"
)

// pageVersion is one retained pre-image: the page's content at every
// epoch <= upTo (back to the previous retained version, if any).
type pageVersion struct {
	upTo uint64
	pg   *page.Page
}

// PageRef is a readable page handle returned by ReadAt: either a live
// frame held with a shared latch and a pin, or an immutable retained
// copy. Release is mandatory (a no-op for retained copies).
type PageRef struct {
	pool    *Pool
	f       *Frame
	pg      *page.Page
	latched bool
}

// Page returns the slotted-page view. Valid until Release.
func (r PageRef) Page() *page.Page { return r.pg }

// Release drops the latch and pin of a live-frame ref; retained-copy refs
// release nothing.
func (r PageRef) Release() {
	if r.f == nil {
		return
	}
	if r.latched {
		r.f.latch.RUnlock()
	}
	r.pool.Unpin(r.f, false)
}

// Epoch reports the current published epoch.
func (p *Pool) Epoch() uint64 { return p.epoch.Load() }

// PublishEpoch makes the writer's current generation the new published
// epoch and garbage-collects retained versions no pinned reader can need.
// Called by the engine at commit, under its write lock.
func (p *Pool) PublishEpoch() uint64 {
	e := p.epoch.Add(1)
	p.gcVersions()
	return e
}

// PinEpoch registers a reader at the current epoch and returns it.
// Retained versions with upTo >= the pinned epoch survive until the pin
// is released.
func (p *Pool) PinEpoch() uint64 {
	p.pinMu.Lock()
	e := p.epoch.Load()
	p.pins[e]++
	p.pinMu.Unlock()
	return e
}

// UnpinEpoch releases one reader pin taken at epoch e, collecting
// versions if that was the last pin at its epoch.
func (p *Pool) UnpinEpoch(e uint64) {
	p.pinMu.Lock()
	n := p.pins[e] - 1
	if n <= 0 {
		delete(p.pins, e)
	} else {
		p.pins[e] = n
	}
	p.pinMu.Unlock()
	if n <= 0 {
		p.gcVersions()
	}
}

// PinnedEpochs reports the number of distinct epochs currently pinned
// (stats, tests).
func (p *Pool) PinnedEpochs() int {
	p.pinMu.Lock()
	defer p.pinMu.Unlock()
	return len(p.pins)
}

// minLiveEpoch is the GC floor: the smallest epoch any pinned reader (or
// a reader pinning right now, which gets the current epoch) can observe.
func (p *Pool) minLiveEpoch() uint64 {
	min := p.epoch.Load()
	p.pinMu.Lock()
	for e := range p.pins {
		if e < min {
			min = e
		}
	}
	p.pinMu.Unlock()
	return min
}

// gcVersions drops retained versions that no live epoch can resolve to:
// a version is needed only while some reader's epoch e satisfies
// e <= upTo, so everything with upTo < minLiveEpoch goes. New pins only
// ever land on the current epoch, so the floor cannot move backwards
// between computing it and sweeping.
func (p *Pool) gcVersions() {
	min := p.minLiveEpoch()
	for _, s := range p.shards {
		s.vmu.Lock()
		for id, vs := range s.versions {
			i := 0
			for i < len(vs) && vs[i].upTo < min {
				i++
			}
			if i == 0 {
				continue
			}
			if i == len(vs) {
				delete(s.versions, id)
			} else {
				s.versions[id] = append([]pageVersion(nil), vs[i:]...)
			}
		}
		s.vmu.Unlock()
	}
}

// VersionCount reports the number of retained page copies (stats, tests).
func (p *Pool) VersionCount() int {
	n := 0
	for _, s := range p.shards {
		s.vmu.RLock()
		for _, vs := range s.versions {
			n += len(vs)
		}
		s.vmu.RUnlock()
	}
	return n
}

// version resolves id at epoch to a retained copy, or nil when the live
// frame is the right content for that epoch.
func (s *shard) version(id disk.PageID, epoch uint64) *page.Page {
	s.vmu.RLock()
	vs := s.versions[id]
	for _, v := range vs {
		if v.upTo >= epoch {
			s.vmu.RUnlock()
			return v.pg
		}
	}
	s.vmu.RUnlock()
	return nil
}

// FetchMut pins the page for mutation: the frame latch is held
// exclusively until UnpinMut, and a pre-image is retained for the
// published epoch if this is the generation's first touch of the page.
// Writer side of the MVCC protocol; the engine's single-writer rule means
// at most one FetchMut is outstanding per page.
func (p *Pool) FetchMut(id disk.PageID) (*Frame, error) {
	f, err := p.Fetch(id)
	if err != nil {
		return nil, err
	}
	f.latch.Lock()
	p.retain(f)
	return f, nil
}

// AllocateMut allocates a fresh page holding the exclusive latch, pairing
// with UnpinMut like FetchMut. Fresh pages need no pre-image (no published
// epoch has seen them, so no snapshot reader can reach them), but taking
// the latch lets mutators treat fetched and allocated frames uniformly.
func (p *Pool) AllocateMut(kind page.Kind) (*Frame, error) {
	f, err := p.Allocate(kind)
	if err != nil {
		return nil, err
	}
	f.latch.Lock()
	return f, nil
}

// UnpinMut releases a FetchMut'd frame: drops the exclusive latch, then
// the pin (marking the frame dirty first when requested).
func (p *Pool) UnpinMut(f *Frame, dirty bool) {
	f.latch.Unlock()
	p.Unpin(f, dirty)
}

// retain stores a pre-image of f tagged with the current epoch, unless
// the frame was born in the current generation (no published epoch ever
// saw it) or a copy for this epoch already exists. Caller holds the
// frame latch exclusively, so the copy is consistent.
func (p *Pool) retain(f *Frame) {
	cur := p.epoch.Load()
	if f.born > cur {
		return
	}
	s := f.shard
	s.vmu.Lock()
	vs := s.versions[f.id]
	if n := len(vs); n > 0 && vs[n-1].upTo >= cur {
		s.vmu.Unlock()
		return
	}
	buf := make([]byte, page.Size)
	copy(buf, f.buf)
	s.versions[f.id] = append(vs, pageVersion{upTo: cur, pg: page.Wrap(buf)})
	s.vmu.Unlock()
}

// ReadAt resolves the page at the given pinned epoch: a retained copy if
// the page changed since, otherwise the live frame under a shared latch
// (re-checking the version map after latching, so a concurrent writer's
// retain-then-mutate cannot slip between the first check and the latch).
// The caller must Release the ref when done with the page.
func (p *Pool) ReadAt(id disk.PageID, epoch uint64) (PageRef, error) {
	s := p.shardFor(id)
	if pg := s.version(id, epoch); pg != nil {
		return PageRef{pg: pg}, nil
	}
	f, err := p.Fetch(id)
	if err != nil {
		return PageRef{}, err
	}
	f.latch.RLock()
	if pg := s.version(id, epoch); pg != nil {
		f.latch.RUnlock()
		p.Unpin(f, false)
		return PageRef{pg: pg}, nil
	}
	return PageRef{pool: p, f: f, pg: f.pg, latched: true}, nil
}

// FetchRef is the live-read counterpart of ReadAt for callers already
// serialised against the writer (engine code under db.mu): a plain pinned
// fetch wrapped in the same PageRef shape so shared read helpers work on
// both paths.
func (p *Pool) FetchRef(id disk.PageID) (PageRef, error) {
	f, err := p.Fetch(id)
	if err != nil {
		return PageRef{}, err
	}
	return PageRef{pool: p, f: f, pg: f.pg}, nil
}
