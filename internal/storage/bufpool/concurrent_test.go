package bufpool

import (
	"fmt"
	"sync"
	"testing"

	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/page"
)

// TestShardCountBounds pins the shard-layout policy: tiny pools collapse
// to one shard so their exact eviction semantics survive sharding, large
// pools split, and the count is always a power of two.
func TestShardCountBounds(t *testing.T) {
	cases := []struct{ capacity, maxShards int }{
		{2, 1}, {64, 1}, {127, 1}, {512, 16}, {4096, 16},
	}
	for _, c := range cases {
		p, _ := newPool(t, c.capacity)
		n := p.ShardCount()
		if n < 1 || n > c.maxShards {
			t.Errorf("capacity %d: %d shards, want 1..%d", c.capacity, n, c.maxShards)
		}
		if n&(n-1) != 0 {
			t.Errorf("capacity %d: shard count %d not a power of two", c.capacity, n)
		}
		if c.capacity < 2*minShardCapacity && n != 1 {
			t.Errorf("capacity %d: small pool split into %d shards", c.capacity, n)
		}
	}
}

// TestConcurrentFetchSharedPage hammers one hot page from many
// goroutines: the shared frame latch must let every reader through and
// pin counts must return to zero.
func TestConcurrentFetchSharedPage(t *testing.T) {
	p, _ := newPool(t, 256)
	f, err := p.Allocate(page.KindHeap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Page().Insert([]byte("hot")); err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	p.Unpin(f, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr, err := p.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if rec, err := fr.Page().Get(0); err != nil || string(rec) != "hot" {
					errs <- fmt.Errorf("read %q, %v", rec, err)
					p.Unpin(fr, false)
					return
				}
				p.Unpin(fr, false)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits == 0 {
		t.Error("no cache hits recorded for a hot page")
	}
}

// TestConcurrentFetchManyPages mixes cold misses, evictions, and repeat
// hits across goroutines on a pool smaller than the working set, then
// verifies every page's contents.
func TestConcurrentFetchManyPages(t *testing.T) {
	p, mgr := newPool(t, 256)
	const numPages = 600
	ids := make([]disk.PageID, numPages)
	for i := range ids {
		f, err := p.Allocate(page.KindHeap)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page().Insert([]byte(fmt.Sprintf("page-%04d", i))); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		p.Unpin(f, true)
		if i%128 == 127 {
			if err := p.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < numPages; i++ {
				idx := (i*7 + g*13) % numPages
				fr, err := p.Fetch(ids[idx])
				if err != nil {
					errs <- fmt.Errorf("fetch %d: %v", ids[idx], err)
					return
				}
				want := fmt.Sprintf("page-%04d", idx)
				if rec, err := fr.Page().Get(0); err != nil || string(rec) != want {
					errs <- fmt.Errorf("page %d: read %q, %v (want %q)", ids[idx], rec, err, want)
					p.Unpin(fr, false)
					return
				}
				p.Unpin(fr, false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Len() > 256 {
		t.Errorf("pool holds %d frames, capacity 256", p.Len())
	}
	if s := p.Stats(); s.Misses == 0 {
		t.Error("no misses recorded on a working set larger than the pool")
	}
	_ = mgr
}
