package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := logPath(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Txn: 1, Op: OpInitPage, Page: 5, Kind: 1},
		{Txn: 1, Op: OpInsertAt, Page: 5, Slot: 0, Data: []byte("tuple-one")},
		{Txn: 1, Op: OpSetAux, Page: 5, Aux: 6},
		{Txn: 1, Op: OpCommit},
		{Txn: 2, Op: OpDelete, Page: 5, Slot: 0},
		{Txn: 2, Op: OpUpdate, Page: 5, Slot: 1, Data: []byte("v2")},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var got []Record
	if err := Scan(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestScanMissingFile(t *testing.T) {
	if err := Scan(filepath.Join(t.TempDir(), "absent.wal"), func(Record) error {
		t.Error("callback on missing file")
		return nil
	}); err != nil {
		t.Errorf("Scan of missing file: %v", err)
	}
}

func TestCommittedOpsDropsUncommittedTail(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Data: []byte("a")})
	l.Append(Record{Txn: 1, Op: OpCommit})
	l.Append(Record{Txn: 2, Op: OpInsertAt, Page: 2, Data: []byte("b")})
	// txn 2 never commits (simulated crash)
	l.Sync()
	l.Close()

	ops, err := CommittedOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || string(ops[0].Data) != "a" {
		t.Errorf("CommittedOps = %+v, want only txn 1's insert", ops)
	}
}

func TestCommittedOpsInterleaved(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Slot: 0, Data: []byte("a")})
	l.Append(Record{Txn: 2, Op: OpInsertAt, Page: 2, Slot: 1, Data: []byte("b")})
	l.Append(Record{Txn: 2, Op: OpCommit})
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Slot: 2, Data: []byte("c")})
	l.Append(Record{Txn: 1, Op: OpCommit})
	l.Sync()
	l.Close()

	ops, err := CommittedOps(path)
	if err != nil {
		t.Fatal(err)
	}
	// All committed; log order preserved.
	want := []string{"a", "b", "c"}
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	for i, w := range want {
		if string(ops[i].Data) != w {
			t.Errorf("op %d = %q, want %q", i, ops[i].Data, w)
		}
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Data: []byte("intact")})
	l.Append(Record{Txn: 1, Op: OpCommit})
	l.Sync()
	l.Close()

	// Corrupt: append a torn frame (header claims more bytes than present).
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3, 4, 9, 9})
	f.Close()

	ops, err := CommittedOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || string(ops[0].Data) != "intact" {
		t.Errorf("torn tail not ignored: %+v", ops)
	}
}

func TestCorruptChecksumEndsScan(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Data: []byte("first")})
	l.Sync()
	size := l.Size()
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Data: []byte("second")})
	l.Sync()
	l.Close()

	// Flip a byte inside the second record's payload.
	data, _ := os.ReadFile(path)
	data[size+10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	var n int
	Scan(path, func(Record) error { n++; return nil })
	if n != 1 {
		t.Errorf("scan past corrupt record: visited %d, want 1", n)
	}
}

func TestTruncate(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpInsertAt, Page: 2, Data: []byte("x")})
	l.Append(Record{Txn: 1, Op: OpCommit})
	l.Sync()
	if l.Size() == 0 {
		t.Fatal("size should be nonzero before truncate")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Errorf("Size after truncate = %d", l.Size())
	}
	// Log still usable after truncation.
	l.Append(Record{Txn: 2, Op: OpInsertAt, Page: 3, Data: []byte("y")})
	l.Append(Record{Txn: 2, Op: OpCommit})
	l.Sync()
	l.Close()
	ops, err := CommittedOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Page != 3 {
		t.Errorf("post-truncate ops = %+v", ops)
	}
}

func TestSizeAcrossReopen(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path)
	l.Append(Record{Txn: 1, Op: OpCommit})
	l.Sync()
	want := l.Size()
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != want {
		t.Errorf("reopened Size = %d, want %d", l2.Size(), want)
	}
}
