// Package wal implements the write-ahead log that gives the XomatiQ
// warehouse the crash-recovery property the paper claims from its
// commercial RDBMS ("we can exploit the concurrency access and crash
// recovery features of an RDBMS").
//
// Design: redo-only logical logging over heap pages with a NO-STEAL
// buffer policy. Heap mutations append page-directed records (init page,
// set aux, insert-at, delete, update — or, on the bulk-load path, one
// whole-page image per filled page) tagged with a transaction id; a
// commit record, followed by an fsync, makes the transaction durable.
// Dirty data pages are only written back at a checkpoint, which flushes
// the buffer pool and then truncates the log. Recovery therefore replays
// the ops of committed transactions, in log order, onto a data file that
// is exactly the state of the last checkpoint. Index pages are not
// logged: indexes are rebuilt from heap contents when recovery replays
// any record.
//
// Record framing: [4]length [4]crc32 payload. A torn tail (short frame or
// bad checksum) ends recovery at the last intact record, so a crash
// mid-append loses only the uncommitted tail.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"xomatiq/internal/obs"
	"xomatiq/internal/storage/disk"
)

// Op identifies a log record type.
type Op uint8

// Log record types.
const (
	OpInitPage  Op = iota + 1 // payload: pageID, kind
	OpSetAux                  // payload: pageID, aux
	OpInsertAt                // payload: pageID, slot, record bytes
	OpDelete                  // payload: pageID, slot
	OpUpdate                  // payload: pageID, slot, record bytes
	OpCommit                  // no payload
	OpPageImage               // payload: pageID, kind, full page bytes
)

// Record is one logical log record.
type Record struct {
	Txn  uint64
	Op   Op
	Page uint32
	Slot uint16
	Kind uint8  // for OpInitPage
	Aux  uint32 // for OpSetAux
	Data []byte // for OpInsertAt / OpUpdate
}

// Log is an append-only write-ahead log file.
type Log struct {
	mu   sync.Mutex
	f    disk.File
	aw   *appendWriter
	w    *bufio.Writer
	path string
	size int64
	m    *obs.WALMetrics // always non-nil; SetMetrics swaps in the engine's
}

// appendWriter turns a positional disk.File into the sequential writer
// the buffered appender needs, tracking the append offset explicitly so
// the File interface does not have to expose Seek.
type appendWriter struct {
	f   disk.File
	off int64
}

func (w *appendWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Open opens (creating if absent) the log at path, positioned to append.
func Open(path string) (*Log, error) {
	return OpenFS(disk.OS{}, path)
}

// OpenFS opens (creating if absent) the log at path within fs.
func OpenFS(fs disk.FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("wal: stat: %w", err), f.Close())
	}
	aw := &appendWriter{f: f, off: size}
	return &Log{f: f, aw: aw, w: bufio.NewWriter(aw), path: path, size: size,
		m: &obs.WALMetrics{}}, nil
}

// SetMetrics points the log's counters at the given registry group. Must
// be called before concurrent use (the engine calls it at open time).
func (l *Log) SetMetrics(m *obs.WALMetrics) {
	l.mu.Lock()
	l.m = m
	l.mu.Unlock()
}

func (r *Record) encode() []byte {
	buf := make([]byte, 0, 24+len(r.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], r.Txn)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(r.Op))
	binary.LittleEndian.PutUint32(tmp[:4], r.Page)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], r.Slot)
	buf = append(buf, tmp[:2]...)
	buf = append(buf, r.Kind)
	binary.LittleEndian.PutUint32(tmp[:4], r.Aux)
	buf = append(buf, tmp[:4]...)
	return append(buf, r.Data...)
}

func decodeRecord(p []byte) (Record, error) {
	if len(p) < 20 {
		return Record{}, fmt.Errorf("wal: record of %d bytes too short", len(p))
	}
	r := Record{
		Txn:  binary.LittleEndian.Uint64(p[0:]),
		Op:   Op(p[8]),
		Page: binary.LittleEndian.Uint32(p[9:]),
		Slot: binary.LittleEndian.Uint16(p[13:]),
		Kind: p[15],
		Aux:  binary.LittleEndian.Uint32(p[16:]),
	}
	if len(p) > 20 {
		r.Data = append([]byte(nil), p[20:]...)
	}
	return r, nil
}

// Append adds a record to the log buffer. It is not durable until Sync.
func (l *Log) Append(r Record) error {
	payload := r.encode()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(hdr) + len(payload))
	l.m.Appends.Inc()
	l.m.Bytes.Add(uint64(len(hdr) + len(payload)))
	return nil
}

// Flush writes buffered records through to the log file without
// fsyncing. After Flush, a reader of the file (Scan, CommittedOps) sees
// every record appended so far; rollback uses this to re-derive the
// committed state without forcing durability.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the log file. A transaction is
// durable once its commit record has been Synced.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.m.Fsyncs.Inc()
	return nil
}

// DiscardBuffer drops any buffered-but-unwritten records and clears the
// writer's sticky error, re-anchoring the append position at the bytes
// actually on disk. After a failed append or flush the bufio.Writer
// refuses all further writes; rollback calls DiscardBuffer so the log
// can keep serving later transactions. Records already written through
// to the file are unaffected (an uncommitted tail is ignored by Scan).
func (l *Log) DiscardBuffer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Reset(l.aw)
	l.size = l.aw.off
}

// Size reports the current log length in bytes (including buffered data).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Truncate empties the log; called after a checkpoint has made all logged
// effects durable in the data file.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: truncate flush: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.m.Fsyncs.Inc()
	l.size = 0
	l.aw.off = 0
	l.w.Reset(l.aw)
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return errors.Join(err, l.f.Close())
	}
	return l.f.Close()
}

// Scan reads the log from the start, calling fn for every intact record.
// It stops silently at a torn tail (truncated frame or checksum mismatch),
// which is the expected state after a crash mid-append.
func Scan(path string, fn func(Record) error) error {
	return ScanFS(disk.OS{}, path, fn)
}

// ScanFS is Scan within fs. A missing log reads as empty (OpenFile
// creates it), which is the same recovery outcome.
func ScanFS(fs disk.FS, path string, fn func(Record) error) (err error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return fmt.Errorf("wal: scan open: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("wal: scan stat: %w", err)
	}
	r := bufio.NewReader(io.NewSectionReader(f, 0, size))
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or torn header
			}
			// A real I/O error is NOT a torn tail: treating it as one
			// would silently report committed records as absent, and a
			// recovery or rollback acting on that would destroy them.
			return fmt.Errorf("wal: scan read: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length > 1<<24 {
			return nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn payload
			}
			return fmt.Errorf("wal: scan read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // torn record
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// CommittedOps scans the log and returns, in log order, the operations of
// every transaction that has a commit record. Operations of uncommitted
// transactions (the crash-torn tail) are dropped.
func CommittedOps(path string) ([]Record, error) {
	return CommittedOpsFS(disk.OS{}, path)
}

// CommittedOpsFS is CommittedOps within fs.
func CommittedOpsFS(fs disk.FS, path string) ([]Record, error) {
	var all []Record
	committed := map[uint64]bool{}
	if err := ScanFS(fs, path, func(r Record) error {
		if r.Op == OpCommit {
			committed[r.Txn] = true
			return nil
		}
		all = append(all, r)
		return nil
	}); err != nil {
		return nil, err
	}
	ops := all[:0]
	for _, r := range all {
		if committed[r.Txn] {
			ops = append(ops, r)
		}
	}
	return ops, nil
}
