// Package crashtest sweeps power-cut crash points through a storage
// workload and verifies that recovery restores a committed state.
//
// The harness runs a deterministic workload three ways over a seeded
// faultfs image:
//
//  1. a count run, fault-free, to learn how many disk operations the
//     workload performs;
//  2. a snapshot run that records a content fingerprint after setup and
//     after every step — the only states a crash is ever allowed to
//     recover to;
//  3. one crashed run per sampled crash point k: the identical workload
//     with the power cut at operation k, followed by a reboot, a
//     fault-free reopen and verification.
//
// Because the workload is deterministic and the crashed run sees no
// faults before the cut, its execution is byte-for-byte the count run's
// prefix, so "crash at op k" lands at the same logical place every time
// and the snapshot run's fingerprints are valid expectations.
//
// After each reopen the harness asserts the WAL-replay invariant of the
// engine's redo-only/no-steal design: with synchronous commits, the
// recovered content equals the fingerprint after the last step that
// returned success, or — when the in-flight commit record reached the
// log before the cut — the fingerprint one step later. Every step must
// therefore be a single atomic transaction (one auto-commit statement
// or one Begin/Commit batch). Structural consistency (catalog decodes,
// heaps decode, indexes complete) is the workload's job via Verify,
// typically sql.DB.CheckConsistency plus query-equivalence checks.
package crashtest

import (
	"fmt"

	"xomatiq/internal/faultfs"
	"xomatiq/internal/sql"
)

// Step is one atomic unit of workload: a single transaction.
type Step struct {
	Name string
	Run  func(db *sql.DB) error
}

// Workload describes what the sweep executes and how to judge recovery.
type Workload struct {
	// Setup creates the schema. It must be idempotent (IF NOT EXISTS):
	// a crash mid-setup recovers a partial schema and, on sweep points
	// before the first step, only Verify runs against it.
	Setup func(db *sql.DB) error
	// Steps are the atomic mutations, each one committed transaction.
	Steps []Step
	// Fingerprint reduces the database content the workload cares about
	// to a comparable string. It must be deterministic and read-only.
	Fingerprint func(db *sql.DB) (string, error)
	// Verify, if set, runs structural checks on every recovered
	// database (e.g. CheckConsistency) regardless of crash position.
	Verify func(db *sql.DB) error
}

// WithSnapshotReader threads an MVCC reader through every step of w:
// before the step mutates, a snapshot is pinned and read; after the
// step commits, the same pinned snapshot is read again and must return
// byte-identical content — the committed boundary the reader started
// on, never a torn epoch. Because the reads run synchronously inside
// each step they execute identically in the count run, the snapshot run
// and every crashed run, preserving the harness's determinism
// invariant; a crash point that lands inside a step therefore also
// lands while a reader holds an old snapshot, which is exactly the
// window this wrapper exists to sweep. read must be deterministic and
// read-only, resolving all page access through the given snapshot.
func WithSnapshotReader(w Workload, read func(db *sql.DB, s *sql.Snap) (string, error)) Workload {
	out := w
	out.Steps = make([]Step, len(w.Steps))
	for i, st := range w.Steps {
		st := st
		out.Steps[i] = Step{Name: st.Name, Run: func(db *sql.DB) error {
			snap := db.AcquireSnapshot()
			defer db.ReleaseSnapshot(snap)
			pinned, err := read(db, snap)
			if err != nil {
				return fmt.Errorf("snapshot read before %s: %w", st.Name, err)
			}
			if err := st.Run(db); err != nil {
				return err
			}
			after, err := read(db, snap)
			if err != nil {
				return fmt.Errorf("snapshot re-read after %s: %w", st.Name, err)
			}
			if after != pinned {
				return fmt.Errorf("snapshot reader across %s saw a torn epoch\n--- pinned ---\n%s--- after commit ---\n%s",
					st.Name, pinned, after)
			}
			return nil
		}}
	}
	return out
}

// Config tunes a sweep.
type Config struct {
	Seed int64
	// Path of the database inside the fault filesystem ("crash.db").
	Path string
	// Opts for sql.Open; FS is overwritten per run. Commits are forced
	// synchronous — the recovery invariant does not hold in async mode.
	Opts sql.Options
	// MaxPoints caps how many crash points are exercised, sampled evenly
	// across the workload's operation count. 0 sweeps every operation.
	MaxPoints int
}

// Result summarises a sweep.
type Result struct {
	TotalOps int64 // disk operations in the fault-free run
	Points   int   // crash points exercised
	// AtCommitted counts recoveries that landed on the last completed
	// step; InFlight counts those where the interrupted transaction
	// turned out durable; PreSetup counts crashes before setup finished
	// (fingerprints not applicable, Verify still runs).
	AtCommitted int
	InFlight    int
	PreSetup    int
}

func (r Result) String() string {
	return fmt.Sprintf("crashtest: %d ops, %d points (%d at-committed, %d in-flight, %d pre-setup)",
		r.TotalOps, r.Points, r.AtCommitted, r.InFlight, r.PreSetup)
}

// Sweep runs the workload's crash-point sweep and returns its summary,
// or an error naming the first failing crash point.
func Sweep(cfg Config, w Workload) (Result, error) {
	if cfg.Path == "" {
		cfg.Path = "crash.db"
	}
	total, err := countRun(cfg, w)
	if err != nil {
		return Result{}, fmt.Errorf("crashtest: fault-free run: %w", err)
	}
	snaps, err := snapshotRun(cfg, w)
	if err != nil {
		return Result{}, fmt.Errorf("crashtest: snapshot run: %w", err)
	}
	res := Result{TotalOps: total}
	for _, k := range samplePoints(total, cfg.MaxPoints) {
		if err := runPoint(cfg, w, snaps, k, &res); err != nil {
			return res, fmt.Errorf("crashtest: crash point %d of %d: %w", k, total, err)
		}
		res.Points++
	}
	return res, nil
}

// countRun executes the workload fault-free to learn its op count.
func countRun(cfg Config, w Workload) (int64, error) {
	fs := faultfs.New(cfg.Seed)
	db, err := openOn(cfg, fs)
	if err != nil {
		return 0, err
	}
	if w.Setup != nil {
		if err := w.Setup(db); err != nil {
			return 0, fmt.Errorf("setup: %w", err)
		}
	}
	for i, s := range w.Steps {
		if err := s.Run(db); err != nil {
			return 0, fmt.Errorf("step %d (%s): %w", i, s.Name, err)
		}
	}
	if err := db.Close(); err != nil {
		return 0, err
	}
	return fs.Ops(), nil
}

// snapshotRun records the expected fingerprint after setup (snaps[0])
// and after step i (snaps[i+1]). Its op stream diverges from the count
// run — fingerprint reads consume operations — which is why it is a
// separate run: crashed runs must mirror the count run exactly.
func snapshotRun(cfg Config, w Workload) ([]string, error) {
	db, err := openOn(cfg, faultfs.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if w.Setup != nil {
		if err := w.Setup(db); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	snaps := make([]string, 0, len(w.Steps)+1)
	fp, err := w.Fingerprint(db)
	if err != nil {
		return nil, fmt.Errorf("fingerprint after setup: %w", err)
	}
	snaps = append(snaps, fp)
	for i, s := range w.Steps {
		if err := s.Run(db); err != nil {
			return nil, fmt.Errorf("step %d (%s): %w", i, s.Name, err)
		}
		if fp, err = w.Fingerprint(db); err != nil {
			return nil, fmt.Errorf("fingerprint after step %d: %w", i, err)
		}
		snaps = append(snaps, fp)
	}
	return snaps, nil
}

// runPoint replays the workload with a power cut at op k, reboots and
// verifies the recovered database.
func runPoint(cfg Config, w Workload, snaps []string, k int64, res *Result) error {
	fs := faultfs.New(cfg.Seed)
	fs.CrashAt(k)
	// completed: -1 while setup is unfinished, then the number of steps
	// that returned success before the cut.
	completed := -1
	var firstErr error
	if db, err := openOn(cfg, fs); err != nil {
		firstErr = err
	} else {
		if w.Setup != nil {
			firstErr = w.Setup(db)
		}
		if firstErr == nil {
			completed = 0
			for _, s := range w.Steps {
				if firstErr = s.Run(db); firstErr != nil {
					break
				}
				completed++
			}
		}
		if completed == len(w.Steps) {
			// The cut lands in the final checkpoint; content is settled.
			_ = db.Close()
		}
		// Otherwise the handle is abandoned mid-crash, like the process
		// it simulates; all its state is in memory.
	}
	if !fs.Crashed() {
		// The cut never fired: either the workload stopped early for a
		// non-crash reason (impossible if it is deterministic, since the
		// fault-free run succeeded) or the point exceeds the op count.
		return fmt.Errorf("workload ended before the crash point fired (first error: %v)", firstErr)
	}

	re := fs.Reboot()
	db, err := openOn(cfg, re)
	if err != nil {
		return fmt.Errorf("reopen after %s: %w", fs.DescribeOp(k), err)
	}
	defer db.Close()
	if w.Verify != nil {
		if err := w.Verify(db); err != nil {
			return fmt.Errorf("verify after %s (completed %d steps): %w", fs.DescribeOp(k), completed, err)
		}
	}
	if completed < 0 {
		res.PreSetup++
		return nil
	}
	fp, err := w.Fingerprint(db)
	if err != nil {
		return fmt.Errorf("fingerprint after recovery: %w", err)
	}
	switch {
	case fp == snaps[completed]:
		res.AtCommitted++
	case completed+1 < len(snaps) && fp == snaps[completed+1]:
		res.InFlight++
	default:
		return fmt.Errorf("recovered content after %s matches neither step %d nor step %d state:\n%s",
			fs.DescribeOp(k), completed, completed+1, fp)
	}
	return nil
}

func openOn(cfg Config, fs *faultfs.FS) (*sql.DB, error) {
	opts := cfg.Opts
	opts.FS = fs
	opts.SyncOnCommit = true
	return sql.Open(cfg.Path, opts)
}

// samplePoints picks up to max crash points evenly across the 0-based
// operation indexes [0, total-1].
func samplePoints(total int64, max int) []int64 {
	if total < 1 {
		return nil
	}
	if max <= 0 || int64(max) >= total {
		pts := make([]int64, 0, total)
		for k := int64(0); k < total; k++ {
			pts = append(pts, k)
		}
		return pts
	}
	if max == 1 {
		return []int64{total - 1}
	}
	pts := make([]int64, 0, max)
	for i := 0; i < max; i++ {
		// Spread points across the range, always including the last op.
		k := (total - 1) * int64(i) / int64(max-1)
		if len(pts) > 0 && pts[len(pts)-1] == k {
			continue
		}
		pts = append(pts, k)
	}
	return pts
}
