// Package heap implements heap files: unordered collections of
// variable-length records stored in chained slotted pages, addressed by
// stable record IDs. Table rows in the XomatiQ relational engine live in
// heap files; every mutation is logged to the write-ahead log before the
// page is touched.
package heap

import (
	"errors"
	"fmt"

	"xomatiq/internal/storage/bufpool"
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/page"
	"xomatiq/internal/storage/wal"
)

// RID is a stable record identifier: the page holding the record and its
// slot within the page.
type RID struct {
	Page disk.PageID
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// ErrTooLarge is returned for records that exceed the single-page limit.
var ErrTooLarge = errors.New("heap: record exceeds page capacity")

// maxRecord leaves room for the page header and one slot.
const maxRecord = page.Size - 64

// ErrFrozen is returned by mutators of a frozen (snapshot) heap.
var ErrFrozen = errors.New("heap: mutation of frozen snapshot heap")

// Heap is one heap file: a chain of pages linked through the page aux
// field. Mutation is not safe for concurrent use (the engine layer
// serialises writers); a frozen heap (see Freeze) is an immutable
// epoch-bound view safe to read concurrently with the writer.
type Heap struct {
	pool  *bufpool.Pool
	log   *wal.Log
	first disk.PageID
	last  disk.PageID
	count int
	pages []disk.PageID // chain order; parallel scans partition this

	// Frozen heaps resolve page reads through the pool's version map at
	// a fixed epoch instead of the live frames.
	frozen bool
	epoch  uint64
}

// Freeze returns an immutable view of the heap bound to the given
// published epoch: reads resolve through the buffer pool's version map,
// so a concurrent writer's page mutations are invisible. The page chain
// and count are copied; mutators of the view fail with ErrFrozen. The
// caller is responsible for keeping the epoch pinned (bufpool.PinEpoch)
// while the view is in use.
func (h *Heap) Freeze(epoch uint64) *Heap {
	return &Heap{
		pool:   h.pool,
		first:  h.first,
		last:   h.last,
		count:  h.count,
		pages:  append([]disk.PageID(nil), h.pages...),
		frozen: true,
		epoch:  epoch,
	}
}

// fetchRead resolves a page for reading: version-mapped at the frozen
// epoch, or the live frame for a mutable heap (whose callers are
// serialised against the writer by the engine).
func (h *Heap) fetchRead(id disk.PageID) (bufpool.PageRef, error) {
	if h.frozen {
		return h.pool.ReadAt(id, h.epoch)
	}
	return h.pool.FetchRef(id)
}

// Create allocates a new heap file and returns it. The first page ID is
// the heap's persistent identity; callers store it in the catalog.
func Create(pool *bufpool.Pool, log *wal.Log, txn uint64) (*Heap, error) {
	f, err := pool.Allocate(page.KindHeap)
	if err != nil {
		return nil, fmt.Errorf("heap: create: %w", err)
	}
	id := f.ID()
	pool.Unpin(f, true)
	if log != nil {
		if err := log.Append(wal.Record{Txn: txn, Op: wal.OpInitPage, Page: uint32(id), Kind: uint8(page.KindHeap)}); err != nil {
			return nil, err
		}
	}
	return &Heap{pool: pool, log: log, first: id, last: id, pages: []disk.PageID{id}}, nil
}

// Open attaches to an existing heap file by its first page, walking the
// chain to find the append target and record count.
func Open(pool *bufpool.Pool, log *wal.Log, first disk.PageID) (*Heap, error) {
	h := &Heap{pool: pool, log: log, first: first, last: first}
	id := first
	for id != disk.InvalidPage {
		f, err := pool.Fetch(id)
		if err != nil {
			return nil, fmt.Errorf("heap: open: %w", err)
		}
		h.count += f.Page().LiveCount()
		next := disk.PageID(f.Page().Aux())
		pool.Unpin(f, false)
		h.pages = append(h.pages, id)
		h.last = id
		id = next
	}
	return h, nil
}

// FirstPage returns the heap's persistent identity.
func (h *Heap) FirstPage() disk.PageID { return h.first }

// Count reports the number of live records.
func (h *Heap) Count() int { return h.count }

func (h *Heap) appendLog(r wal.Record) error {
	if h.log == nil {
		return nil
	}
	return h.log.Append(r)
}

// Insert appends a record and returns its RID.
func (h *Heap) Insert(txn uint64, rec []byte) (RID, error) {
	if h.frozen {
		return RID{}, ErrFrozen
	}
	if len(rec) > maxRecord {
		return RID{}, fmt.Errorf("heap: %d-byte record: %w", len(rec), ErrTooLarge)
	}
	f, err := h.pool.FetchMut(h.last)
	if err != nil {
		return RID{}, err
	}
	slot, err := f.Page().Insert(rec)
	if err == nil {
		rid := RID{Page: f.ID(), Slot: uint16(slot)}
		h.pool.UnpinMut(f, true)
		h.count++
		return rid, h.appendLog(wal.Record{Txn: txn, Op: wal.OpInsertAt, Page: uint32(rid.Page), Slot: rid.Slot, Data: rec})
	}
	if !errors.Is(err, page.ErrPageFull) {
		h.pool.UnpinMut(f, false)
		return RID{}, err
	}
	// Grow the chain.
	nf, err := h.pool.AllocateMut(page.KindHeap)
	if err != nil {
		h.pool.UnpinMut(f, false)
		return RID{}, err
	}
	f.Page().SetAux(uint32(nf.ID()))
	h.pool.UnpinMut(f, true)
	if err := h.appendLog(wal.Record{Txn: txn, Op: wal.OpInitPage, Page: uint32(nf.ID()), Kind: uint8(page.KindHeap)}); err != nil {
		h.pool.UnpinMut(nf, true)
		return RID{}, err
	}
	if err := h.appendLog(wal.Record{Txn: txn, Op: wal.OpSetAux, Page: uint32(h.last), Aux: uint32(nf.ID())}); err != nil {
		h.pool.UnpinMut(nf, true)
		return RID{}, err
	}
	h.last = nf.ID()
	h.pages = append(h.pages, nf.ID())
	slot, err = nf.Page().Insert(rec)
	if err != nil {
		h.pool.UnpinMut(nf, true)
		return RID{}, fmt.Errorf("heap: insert into fresh page: %w", err)
	}
	rid := RID{Page: nf.ID(), Slot: uint16(slot)}
	h.pool.UnpinMut(nf, true)
	h.count++
	return rid, h.appendLog(wal.Record{Txn: txn, Op: wal.OpInsertAt, Page: uint32(rid.Page), Slot: rid.Slot, Data: rec})
}

// logPageImage logs the frame's entire current page contents as one
// OpPageImage record. The WAL copies the payload synchronously, so the
// live page buffer can be passed directly.
func (h *Heap) logPageImage(txn uint64, f *bufpool.Frame) error {
	if h.log == nil {
		return nil
	}
	return h.log.Append(wal.Record{
		Txn:  txn,
		Op:   wal.OpPageImage,
		Page: uint32(f.ID()),
		Kind: uint8(f.Page().Kind()),
		Data: f.Page().Bytes(),
	})
}

// InsertBatch appends records in order, returning their RIDs. Instead of
// one WAL record per insert it logs one whole-page image per page the
// batch touches (when the page fills, and once for the partial tail), so
// a bulk load's log traffic is proportional to pages written, not rows.
//
// Correctness of the image against replay: the engine serialises
// transactions, so at image time the page holds only records of already
// committed transactions (whose ops precede this record in the log) plus
// records of the batch's own transaction. Replaying the image in log
// order therefore reconstructs exactly the committed state; if this
// transaction aborts, its images are filtered out with its other ops.
func (h *Heap) InsertBatch(txn uint64, recs [][]byte) ([]RID, error) {
	if h.frozen {
		return nil, ErrFrozen
	}
	if len(recs) == 0 {
		return nil, nil
	}
	rids := make([]RID, 0, len(recs))
	f, err := h.pool.FetchMut(h.last)
	if err != nil {
		return nil, err
	}
	touched := false // page has records from this batch not yet imaged
	for _, rec := range recs {
		if len(rec) > maxRecord {
			h.pool.UnpinMut(f, touched)
			return rids, fmt.Errorf("heap: %d-byte record: %w", len(rec), ErrTooLarge)
		}
		slot, err := f.Page().Insert(rec)
		if errors.Is(err, page.ErrPageFull) {
			// Grow the chain; the finished page's image includes the
			// forward link, so no separate init/set-aux records.
			nf, err := h.pool.AllocateMut(page.KindHeap)
			if err != nil {
				h.pool.UnpinMut(f, touched)
				return rids, err
			}
			f.Page().SetAux(uint32(nf.ID()))
			if err := h.logPageImage(txn, f); err != nil {
				h.pool.UnpinMut(f, true)
				h.pool.UnpinMut(nf, true)
				return rids, err
			}
			h.pool.UnpinMut(f, true)
			h.last = nf.ID()
			h.pages = append(h.pages, nf.ID())
			f = nf
			touched = false
			slot, err = f.Page().Insert(rec)
			if err != nil {
				h.pool.UnpinMut(f, true)
				return rids, fmt.Errorf("heap: batch insert into fresh page: %w", err)
			}
		} else if err != nil {
			h.pool.UnpinMut(f, touched)
			return rids, err
		}
		rids = append(rids, RID{Page: f.ID(), Slot: uint16(slot)})
		touched = true
		h.count++
	}
	if touched {
		if err := h.logPageImage(txn, f); err != nil {
			h.pool.UnpinMut(f, true)
			return rids, err
		}
	}
	h.pool.UnpinMut(f, touched)
	return rids, nil
}

// Get returns a copy of the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	ref, err := h.fetchRead(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := ref.Page().Get(int(rid.Slot))
	if err != nil {
		ref.Release()
		return nil, err
	}
	out := append([]byte(nil), rec...)
	ref.Release()
	return out, nil
}

// Delete removes the record at rid.
func (h *Heap) Delete(txn uint64, rid RID) error {
	if h.frozen {
		return ErrFrozen
	}
	f, err := h.pool.FetchMut(rid.Page)
	if err != nil {
		return err
	}
	if err := f.Page().Delete(int(rid.Slot)); err != nil {
		h.pool.UnpinMut(f, false)
		return err
	}
	h.pool.UnpinMut(f, true)
	h.count--
	return h.appendLog(wal.Record{Txn: txn, Op: wal.OpDelete, Page: uint32(rid.Page), Slot: rid.Slot})
}

// Update replaces the record at rid. When the new payload no longer fits
// in its page the record moves; the returned RID is the current location.
func (h *Heap) Update(txn uint64, rid RID, rec []byte) (RID, error) {
	if h.frozen {
		return rid, ErrFrozen
	}
	if len(rec) > maxRecord {
		return rid, fmt.Errorf("heap: %d-byte record: %w", len(rec), ErrTooLarge)
	}
	f, err := h.pool.FetchMut(rid.Page)
	if err != nil {
		return rid, err
	}
	err = f.Page().Update(int(rid.Slot), rec)
	if err == nil {
		h.pool.UnpinMut(f, true)
		return rid, h.appendLog(wal.Record{Txn: txn, Op: wal.OpUpdate, Page: uint32(rid.Page), Slot: rid.Slot, Data: rec})
	}
	h.pool.UnpinMut(f, false)
	if !errors.Is(err, page.ErrPageFull) {
		return rid, err
	}
	if err := h.Delete(txn, rid); err != nil {
		return rid, err
	}
	return h.Insert(txn, rec)
}

// NumPages reports the length of the heap's page chain.
func (h *Heap) NumPages() int { return len(h.pages) }

// PageIDs returns the heap's page chain in order. The slice is shared
// with the heap: callers must not mutate it, and a reader's view is only
// stable while the engine layer holds writers off (db.mu). Parallel scans
// partition this list across workers.
func (h *Heap) PageIDs() []disk.PageID { return h.pages }

// ScanPage calls fn for every live record of one page, holding the page's
// pin only for the duration of the call, and returns the next page of the
// chain (InvalidPage at the end). stopped reports that fn returned false.
// The rec slice passed to fn is only valid for the duration of the call.
// Streaming iterators and parallel scan workers are built on this: memory
// stays O(page) and pages of one heap may be scanned concurrently.
func (h *Heap) ScanPage(id disk.PageID, fn func(rid RID, rec []byte) bool) (next disk.PageID, stopped bool, err error) {
	ref, err := h.fetchRead(id)
	if err != nil {
		return disk.InvalidPage, false, err
	}
	ref.Page().Records(func(slot int, rec []byte) bool {
		if !fn(RID{Page: id, Slot: uint16(slot)}, rec) {
			stopped = true
			return false
		}
		return true
	})
	next = disk.PageID(ref.Page().Aux())
	ref.Release()
	return next, stopped, nil
}

// Scan calls fn for every live record in chain order. The rec slice passed
// to fn is only valid for the duration of the call.
func (h *Heap) Scan(fn func(rid RID, rec []byte) bool) error {
	id := h.first
	for id != disk.InvalidPage {
		next, stopped, err := h.ScanPage(id, fn)
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
		id = next
	}
	return nil
}

// Replay applies page-directed WAL operations (as returned by
// wal.CommittedOps) onto the pool's pages.
//
// Replay is idempotent per page: a crash can interrupt a checkpoint
// after some dirty pages reached the data file, so each page is either
// in the state of the previous checkpoint or already reflects every
// logged op. Re-applying the op sequence must therefore converge on the
// same final page image: InsertAt and Update both place the record at
// its exact slot, overwriting whatever is there, and Delete of an
// already-deleted slot is a no-op rather than an error.
func Replay(pool *bufpool.Pool, ops []wal.Record) error {
	for _, op := range ops {
		if op.Op == wal.OpInitPage {
			f, err := pool.Fetch(disk.PageID(op.Page))
			if err != nil {
				return fmt.Errorf("heap: replay init page %d: %w", op.Page, err)
			}
			f.Page().Init(page.Kind(op.Kind))
			pool.Unpin(f, true)
			continue
		}
		f, err := pool.Fetch(disk.PageID(op.Page))
		if err != nil {
			return fmt.Errorf("heap: replay page %d: %w", op.Page, err)
		}
		switch op.Op {
		case wal.OpSetAux:
			f.Page().SetAux(op.Aux)
		case wal.OpInsertAt, wal.OpUpdate:
			err = f.Page().InsertAt(int(op.Slot), op.Data)
		case wal.OpDelete:
			if f.Page().Live(int(op.Slot)) {
				err = f.Page().Delete(int(op.Slot))
			}
		case wal.OpPageImage:
			if len(op.Data) != page.Size {
				err = fmt.Errorf("heap: replay page image of %d bytes", len(op.Data))
			} else {
				copy(f.Page().Bytes(), op.Data)
			}
		default:
			err = fmt.Errorf("heap: replay unknown op %d", op.Op)
		}
		pool.Unpin(f, true)
		if err != nil {
			return fmt.Errorf("heap: replay op %d on page %d slot %d: %w", op.Op, op.Page, op.Slot, err)
		}
	}
	return nil
}
