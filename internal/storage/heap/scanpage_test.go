package heap

import (
	"bytes"
	"fmt"
	"testing"

	"xomatiq/internal/storage/disk"
)

// TestPageIDsTracksChain checks that the page list matches the on-disk
// chain across growth, reopen, and page-at-a-time iteration — the
// parallel scan operator partitions work by this list.
func TestPageIDsTracksChain(t *testing.T) {
	fx := newFixture(t)
	h, err := Create(fx.pool, fx.log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPages() != 1 {
		t.Fatalf("fresh heap has %d pages", h.NumPages())
	}
	var want []string
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("row-%04d-%s", i, bytes.Repeat([]byte{'y'}, 120))
		want = append(want, s)
		if _, err := h.Insert(1, []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multi-page heap, got %d pages", h.NumPages())
	}

	// The page list must agree with walking the chain via ScanPage.
	ids := h.PageIDs()
	var got []string
	for i, id := range ids {
		next, stopped, err := h.ScanPage(id, func(rid RID, rec []byte) bool {
			if rid.Page != id {
				t.Fatalf("rid page %d inside page %d", rid.Page, id)
			}
			got = append(got, string(rec))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if stopped {
			t.Fatalf("page %d reported early stop", id)
		}
		if i < len(ids)-1 && next != ids[i+1] {
			t.Fatalf("page %d links to %d, page list says %d", id, next, ids[i+1])
		}
		if i == len(ids)-1 && next != disk.InvalidPage {
			t.Fatalf("last page links to %d", next)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pagewise scan saw %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pagewise scan order broken at %d", i)
		}
	}

	// ScanPage honours the callback's stop signal.
	n := 0
	_, stopped, err := h.ScanPage(ids[0], func(RID, []byte) bool { n++; return false })
	if err != nil || !stopped || n != 1 {
		t.Errorf("early stop: n=%d stopped=%v err=%v", n, stopped, err)
	}

	// Reopen rebuilds the same page list from the chain.
	if err := fx.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(fx.pool, fx.log, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	ids2 := h2.PageIDs()
	if len(ids2) != len(ids) {
		t.Fatalf("reopen: %d pages, want %d", len(ids2), len(ids))
	}
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatalf("reopen page list differs at %d: %d vs %d", i, ids[i], ids2[i])
		}
	}
}

// TestInsertBatchGrowsPageList covers the bulk-load growth path.
func TestInsertBatchGrowsPageList(t *testing.T) {
	fx := newFixture(t)
	h, err := Create(fx.pool, fx.log, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([][]byte, 400)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("batch-%04d-%s", i, bytes.Repeat([]byte{'z'}, 100)))
	}
	if _, err := h.InsertBatch(1, recs); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() < 2 {
		t.Fatalf("batch insert left %d pages", h.NumPages())
	}
	n := 0
	if err := h.Scan(func(RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("scan saw %d rows", n)
	}
}
