package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"xomatiq/internal/storage/bufpool"
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/storage/wal"
)

type fixture struct {
	mgr  *disk.Manager
	pool *bufpool.Pool
	log  *wal.Log
	dir  string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	mgr, err := disk.Open(filepath.Join(dir, "data.db"))
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "data.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close(); mgr.Close() })
	return &fixture{mgr: mgr, pool: bufpool.New(mgr, 64), log: log, dir: dir}
}

func TestInsertGetDelete(t *testing.T) {
	fx := newFixture(t)
	h, err := Create(fx.pool, fx.log, 1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert(1, []byte("enzyme 1.14.17.3"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "enzyme 1.14.17.3" {
		t.Errorf("Get = %q, %v", got, err)
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
	if err := h.Delete(1, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("Get after Delete should fail")
	}
	if h.Count() != 0 {
		t.Errorf("Count after delete = %d", h.Count())
	}
}

func TestMultiPageGrowth(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	rec := bytes.Repeat([]byte{7}, 1000)
	var rids []RID
	for i := 0; i < 50; i++ { // ~7 records per page -> multiple pages
		rid, err := h.Insert(1, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages := map[disk.PageID]bool{}
	for _, r := range rids {
		pages[r.Page] = true
	}
	if len(pages) < 2 {
		t.Errorf("expected multi-page heap, got %d pages", len(pages))
	}
	for i, r := range rids {
		got, err := h.Get(r)
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("record %d lost: %v", i, err)
		}
	}
}

func TestScanOrderAndCount(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	var want []string
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("row-%04d-%s", i, bytes.Repeat([]byte{'x'}, 100))
		want = append(want, s)
		if _, err := h.Insert(1, []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := h.Scan(func(rid RID, rec []byte) bool {
		got = append(got, string(rec))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order broken at %d", i)
		}
	}
	// Early termination.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestUpdateInPlaceAndRelocation(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	rid, _ := h.Insert(1, []byte("short"))
	nr, err := h.Update(1, rid, []byte("tiny"))
	if err != nil || nr != rid {
		t.Errorf("in-place update moved: %v %v", nr, err)
	}
	got, _ := h.Get(nr)
	if string(got) != "tiny" {
		t.Errorf("updated value = %q", got)
	}
	// Force cross-page relocation: fill the page, then grow the record.
	for {
		r, err := h.Insert(1, bytes.Repeat([]byte{1}, 512))
		if err != nil {
			t.Fatal(err)
		}
		if r.Page != rid.Page {
			break
		}
	}
	big := bytes.Repeat([]byte{2}, 4000)
	nr2, err := h.Update(1, nr, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err = h.Get(nr2)
	if err != nil || !bytes.Equal(got, big) {
		t.Errorf("relocated record lost: %v", err)
	}
	if h.Count() == 0 {
		t.Error("Count corrupted by relocation")
	}
}

func TestTooLarge(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	if _, err := h.Insert(1, make([]byte, 9000)); err == nil {
		t.Error("oversized insert should fail")
	}
	rid, _ := h.Insert(1, []byte("x"))
	if _, err := h.Update(1, rid, make([]byte, 9000)); err == nil {
		t.Error("oversized update should fail")
	}
}

func TestOpenRecomputesState(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	for i := 0; i < 30; i++ {
		h.Insert(1, bytes.Repeat([]byte{byte(i)}, 700))
	}
	first := h.FirstPage()
	want := h.Count()

	h2, err := Open(fx.pool, fx.log, first)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != want {
		t.Errorf("reopened Count = %d, want %d", h2.Count(), want)
	}
	// Appends through the reopened heap land after existing data.
	rid, err := h2.Insert(1, []byte("appended"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h2.Get(rid)
	if string(got) != "appended" {
		t.Error("append after reopen failed")
	}
}

// TestReplayReproducesHeap logs a workload, then replays the committed ops
// into a fresh file and checks the scan matches.
func TestReplayReproducesHeap(t *testing.T) {
	fx := newFixture(t)
	h, _ := Create(fx.pool, fx.log, 1)
	rng := rand.New(rand.NewSource(42))
	var live []RID
	for i := 0; i < 500; i++ {
		switch {
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			if err := h.Delete(1, live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			nr, err := h.Update(1, live[k], []byte(fmt.Sprintf("updated-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			live[k] = nr
		default:
			rec := make([]byte, 20+rng.Intn(400))
			rng.Read(rec)
			rid, err := h.Insert(1, rec)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, rid)
		}
	}
	fx.log.Append(wal.Record{Txn: 1, Op: wal.OpCommit})
	fx.log.Sync()

	var want [][]byte
	h.Scan(func(_ RID, rec []byte) bool {
		want = append(want, append([]byte(nil), rec...))
		return true
	})

	// Fresh file + pool; replay the log. Pre-extend the file so replay's
	// page ids resolve (the engine relies on disk.Allocate having extended
	// the real file before any op was logged; here we mimic that).
	dir2 := t.TempDir()
	mgr2, err := disk.Open(filepath.Join(dir2, "replayed.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	for mgr2.NumPages() < fx.mgr.NumPages() {
		if _, err := mgr2.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	pool2 := bufpool.New(mgr2, 64)
	ops, err := wal.CommittedOps(filepath.Join(fx.dir, "data.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(pool2, ops); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(pool2, nil, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	h2.Scan(func(_ RID, rec []byte) bool {
		got = append(got, append([]byte(nil), rec...))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("replayed heap has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("replayed record %d differs", i)
		}
	}
}

func TestQuickHeapModel(t *testing.T) {
	f := func(seed int64) bool {
		dir := t.TempDir()
		mgr, err := disk.Open(filepath.Join(dir, "q.db"))
		if err != nil {
			return false
		}
		defer mgr.Close()
		pool := bufpool.New(mgr, 32)
		h, err := Create(pool, nil, 1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[RID][]byte{}
		for step := 0; step < 200; step++ {
			if len(model) > 0 && rng.Intn(3) == 0 {
				for rid := range model {
					if rng.Intn(2) == 0 {
						if h.Delete(1, rid) != nil {
							return false
						}
						delete(model, rid)
					} else {
						rec := make([]byte, rng.Intn(300))
						rng.Read(rec)
						nr, err := h.Update(1, rid, rec)
						if err != nil {
							return false
						}
						delete(model, rid)
						model[nr] = rec
					}
					break
				}
				continue
			}
			rec := make([]byte, rng.Intn(300))
			rng.Read(rec)
			rid, err := h.Insert(1, rec)
			if err != nil {
				return false
			}
			model[rid] = rec
		}
		if h.Count() != len(model) {
			return false
		}
		for rid, want := range model {
			got, err := h.Get(rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRIDString(t *testing.T) {
	if got := (RID{Page: 3, Slot: 7}).String(); got != "3:7" {
		t.Errorf("RID.String = %q", got)
	}
}
