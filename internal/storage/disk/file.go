package disk

import (
	"io"
	"os"
)

// File is the storage engine's view of one on-disk file. *os.File backs
// it in production (see OS); internal/faultfs substitutes deterministic
// fault-injecting implementations so tests can prove the WAL and
// recovery path survive torn writes, I/O errors and power cuts.
//
// Write durability contract: data passed to WriteAt is volatile until a
// Sync returns nil. After a crash, volatile writes may be lost wholly or
// in part; synced data is stable.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size. Like writes, a truncation is
	// volatile until synced.
	Truncate(size int64) error
	// Sync makes all preceding writes and truncations stable.
	Sync() error
	// Close releases the handle without implying a sync.
	Close() error
	// Size reports the current file length in bytes.
	Size() (int64, error)
}

// FS opens files for the storage engine. Implementations must allow the
// same path to be opened more than once (recovery scans the WAL while
// the log handle is open).
type FS interface {
	// OpenFile opens path read-write, creating it when absent.
	OpenFile(path string) (File, error)
	// Remove deletes path (spill-file cleanup). Removing a path that
	// does not exist is not an error.
	Remove(path string) error
}

// OS is the production FS backed by the operating system.
type OS struct{}

// OpenFile opens path read-write, creating it when absent.
func (OS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove deletes path; a missing file is success.
func (OS) Remove(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// osFile adapts *os.File to File (Stat -> Size).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
