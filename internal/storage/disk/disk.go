// Package disk manages a page-addressed database file: fixed-size pages
// identified by PageID, with allocation, free-listing, read, write and
// sync. It is the lowest layer of the XomatiQ storage engine; the buffer
// pool sits on top.
package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"xomatiq/internal/storage/page"
)

// PageID identifies a page within a Manager's file. Page 0 is the file
// header and is never handed out.
type PageID uint32

// InvalidPage is the zero PageID; it never refers to an allocated page.
const InvalidPage PageID = 0

// header layout in page 0:
//
//	0..8   magic "XOMATIQ\x01"
//	8..12  numPages (uint32, includes the header page)
//	12..16 freeListHead (uint32 PageID, 0 = empty)
var magic = [8]byte{'X', 'O', 'M', 'A', 'T', 'I', 'Q', 1}

// Manager owns one database file and serialises page allocation. Reads
// and writes of distinct pages may proceed concurrently.
type Manager struct {
	mu       sync.Mutex
	f        *os.File
	numPages uint32
	freeHead PageID
}

// Open opens (or creates) the database file at path.
func Open(path string) (*Manager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	m := &Manager{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		m.numPages = 1
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return m, nil
	}
	var hdr [page.Size]byte
	if _, err := f.ReadAt(hdr[:16], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: read header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		f.Close()
		return nil, fmt.Errorf("disk: %s is not a xomatiq database file", path)
	}
	m.numPages = binary.LittleEndian.Uint32(hdr[8:])
	m.freeHead = PageID(binary.LittleEndian.Uint32(hdr[12:]))
	return m, nil
}

func (m *Manager) writeHeader() error {
	var hdr [16]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], m.numPages)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.freeHead))
	if _, err := m.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("disk: write header: %w", err)
	}
	return nil
}

// NumPages reports the file size in pages, including the header page.
func (m *Manager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.numPages)
}

// Allocate returns a fresh page ID, reusing a freed page when available.
// The page contents are undefined; callers must initialise before use.
func (m *Manager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.freeHead != InvalidPage {
		id := m.freeHead
		// The first 4 bytes of a free page store the next free page.
		var next [4]byte
		if _, err := m.f.ReadAt(next[:], int64(id)*page.Size); err != nil {
			return InvalidPage, fmt.Errorf("disk: read free list: %w", err)
		}
		m.freeHead = PageID(binary.LittleEndian.Uint32(next[:]))
		return id, m.writeHeader()
	}
	id := PageID(m.numPages)
	m.numPages++
	// Extend the file so later ReadPage of this id succeeds.
	var zero [page.Size]byte
	if _, err := m.f.WriteAt(zero[:], int64(id)*page.Size); err != nil {
		return InvalidPage, fmt.Errorf("disk: extend file: %w", err)
	}
	return id, m.writeHeader()
}

// EnsureAllocated extends the file so that page id exists. WAL replay
// uses it: a crash can lose the header update for pages that were
// allocated and logged but whose header write never reached disk.
func (m *Manager) EnsureAllocated(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uint32(id) < m.numPages {
		return nil
	}
	var zero [page.Size]byte
	for uint32(id) >= m.numPages {
		if _, err := m.f.WriteAt(zero[:], int64(m.numPages)*page.Size); err != nil {
			return fmt.Errorf("disk: extend file: %w", err)
		}
		m.numPages++
	}
	return m.writeHeader()
}

// Free returns a page to the free list.
func (m *Manager) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == InvalidPage || uint32(id) >= m.numPages {
		return fmt.Errorf("disk: free invalid page %d", id)
	}
	var next [4]byte
	binary.LittleEndian.PutUint32(next[:], uint32(m.freeHead))
	if _, err := m.f.WriteAt(next[:], int64(id)*page.Size); err != nil {
		return fmt.Errorf("disk: write free link: %w", err)
	}
	m.freeHead = id
	return m.writeHeader()
}

// ReadPage fills buf (page.Size bytes) with the page contents.
func (m *Manager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: ReadPage buffer of %d bytes", len(buf))
	}
	if id == InvalidPage {
		return fmt.Errorf("disk: read invalid page 0")
	}
	_, err := m.f.ReadAt(buf, int64(id)*page.Size)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("disk: page %d beyond end of file", id)
	}
	if err != nil {
		return fmt.Errorf("disk: read page %d: %w", id, err)
	}
	return nil
}

// WritePage writes buf (page.Size bytes) as the page contents.
func (m *Manager) WritePage(id PageID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: WritePage buffer of %d bytes", len(buf))
	}
	if id == InvalidPage {
		return fmt.Errorf("disk: write invalid page 0")
	}
	if _, err := m.f.WriteAt(buf, int64(id)*page.Size); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (m *Manager) Sync() error {
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (m *Manager) Close() error {
	if err := m.Sync(); err != nil {
		m.f.Close()
		return err
	}
	return m.f.Close()
}
