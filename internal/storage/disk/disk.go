// Package disk manages a page-addressed database file: fixed-size pages
// identified by PageID, with allocation, free-listing, read, write and
// sync. It is the lowest layer of the XomatiQ storage engine; the buffer
// pool sits on top.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"xomatiq/internal/storage/page"
)

// PageID identifies a page within a Manager's file. Page 0 is the file
// header and is never handed out.
type PageID uint32

// InvalidPage is the zero PageID; it never refers to an allocated page.
const InvalidPage PageID = 0

// header layout in page 0:
//
//	0..8   magic "XOMATIQ\x01"
//	8..12  numPages (uint32, includes the header page)
//	12..16 freeListHead (uint32 PageID, 0 = empty)
//	16     flags (bit 0: index anchors stale, rebuild before trusting)
//
// Files written before the flags byte existed are 16 bytes short of it;
// the missing byte reads as zero flags.
var magic = [8]byte{'X', 'O', 'M', 'A', 'T', 'I', 'Q', 1}

const flagIndexesStale = 1 << 0

// Manager owns one database file and serialises page allocation. Reads
// and writes of distinct pages may proceed concurrently.
type Manager struct {
	mu           sync.Mutex
	f            File
	numPages     uint32
	freeHead     PageID
	indexesStale bool
}

// Open opens (or creates) the database file at path on the operating
// system's filesystem.
func Open(path string) (*Manager, error) {
	return OpenFS(OS{}, path)
}

// OpenFS opens (or creates) the database file at path within fs.
func OpenFS(fs FS, path string) (*Manager, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	m := &Manager{f: f}
	size, err := f.Size()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("disk: stat %s: %w", path, err), f.Close())
	}
	if size == 0 {
		m.numPages = 1
		if err := m.writeHeader(); err != nil {
			return nil, errors.Join(err, f.Close())
		}
		// Sync the newborn header before anything else touches the file:
		// without the barrier a crash could persist later page writes
		// while losing the header, leaving a file with content but no
		// magic — indistinguishable from a foreign file.
		if err := f.Sync(); err != nil {
			return nil, errors.Join(fmt.Errorf("disk: sync header: %w", err), f.Close())
		}
		return m, nil
	}
	var hdr [page.Size]byte
	n, err := f.ReadAt(hdr[:17], 0)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, errors.Join(fmt.Errorf("disk: read header: %w", err), f.Close())
	}
	if n < 16 {
		return nil, errors.Join(fmt.Errorf("disk: %s header truncated at %d bytes", path, n), f.Close())
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, errors.Join(fmt.Errorf("disk: %s is not a xomatiq database file", path), f.Close())
	}
	m.numPages = binary.LittleEndian.Uint32(hdr[8:])
	m.freeHead = PageID(binary.LittleEndian.Uint32(hdr[12:]))
	if n >= 17 {
		m.indexesStale = hdr[16]&flagIndexesStale != 0
	}
	// A crash can persist the header's page count while losing the file
	// extension it describes (the header is a small atomic write, the
	// extension a separate one; nothing orders them without a sync).
	// Pages past the real end of file never held synced data, so their
	// contents are either uncommitted (forgotten) or governed by the WAL,
	// whose replay re-extends the file through EnsureAllocated. Trust the
	// file, not the header.
	if got := uint32(size / page.Size); got < m.numPages {
		m.numPages = got
		if m.numPages < 1 {
			m.numPages = 1
		}
		if uint32(m.freeHead) >= m.numPages {
			m.freeHead = InvalidPage
		}
	}
	return m, nil
}

func (m *Manager) writeHeader() error {
	var hdr [17]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], m.numPages)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.freeHead))
	if m.indexesStale {
		hdr[16] |= flagIndexesStale
	}
	if _, err := m.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("disk: write header: %w", err)
	}
	return nil
}

// IndexesStale reports the header flag that marks on-disk index anchors
// as untrustworthy.
func (m *Manager) IndexesStale() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.indexesStale
}

// SetIndexesStale records (or clears) the stale-indexes flag in the
// header. The write becomes durable at the next Sync; callers that raise
// the flag must sync before the writes the flag guards — in practice the
// buffer pool's checkpoint flush, which ends in a sync, provides that
// barrier before the WAL is ever truncated.
func (m *Manager) SetIndexesStale(stale bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.indexesStale == stale {
		return nil
	}
	m.indexesStale = stale
	return m.writeHeader()
}

// NumPages reports the file size in pages, including the header page.
func (m *Manager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.numPages)
}

// Allocate returns a fresh page ID, reusing a freed page when available.
// The page contents are undefined; callers must initialise before use.
func (m *Manager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.freeHead != InvalidPage {
		id := m.freeHead
		// The first 4 bytes of a free page store the next free page.
		var next [4]byte
		if _, err := m.f.ReadAt(next[:], int64(id)*page.Size); err != nil {
			return InvalidPage, fmt.Errorf("disk: read free list: %w", err)
		}
		m.freeHead = PageID(binary.LittleEndian.Uint32(next[:]))
		return id, m.writeHeader()
	}
	id := PageID(m.numPages)
	m.numPages++
	// Extend the file so later ReadPage of this id succeeds.
	var zero [page.Size]byte
	if _, err := m.f.WriteAt(zero[:], int64(id)*page.Size); err != nil {
		return InvalidPage, fmt.Errorf("disk: extend file: %w", err)
	}
	return id, m.writeHeader()
}

// EnsureAllocated extends the file so that page id exists. WAL replay
// uses it: a crash can lose the header update for pages that were
// allocated and logged but whose header write never reached disk.
func (m *Manager) EnsureAllocated(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uint32(id) < m.numPages {
		return nil
	}
	var zero [page.Size]byte
	for uint32(id) >= m.numPages {
		if _, err := m.f.WriteAt(zero[:], int64(m.numPages)*page.Size); err != nil {
			return fmt.Errorf("disk: extend file: %w", err)
		}
		m.numPages++
	}
	return m.writeHeader()
}

// Free returns a page to the free list.
func (m *Manager) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == InvalidPage || uint32(id) >= m.numPages {
		return fmt.Errorf("disk: free invalid page %d", id)
	}
	var next [4]byte
	binary.LittleEndian.PutUint32(next[:], uint32(m.freeHead))
	if _, err := m.f.WriteAt(next[:], int64(id)*page.Size); err != nil {
		return fmt.Errorf("disk: write free link: %w", err)
	}
	m.freeHead = id
	return m.writeHeader()
}

// ReadPage fills buf (page.Size bytes) with the page contents.
func (m *Manager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: ReadPage buffer of %d bytes", len(buf))
	}
	if id == InvalidPage {
		return fmt.Errorf("disk: read invalid page 0")
	}
	_, err := m.f.ReadAt(buf, int64(id)*page.Size)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("disk: page %d beyond end of file", id)
	}
	if err != nil {
		return fmt.Errorf("disk: read page %d: %w", id, err)
	}
	return nil
}

// WritePage writes buf (page.Size bytes) as the page contents.
func (m *Manager) WritePage(id PageID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: WritePage buffer of %d bytes", len(buf))
	}
	if id == InvalidPage {
		return fmt.Errorf("disk: write invalid page 0")
	}
	if _, err := m.f.WriteAt(buf, int64(id)*page.Size); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (m *Manager) Sync() error {
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (m *Manager) Close() error {
	if err := m.Sync(); err != nil {
		return errors.Join(err, m.f.Close())
	}
	return m.f.Close()
}
