package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"xomatiq/internal/storage/page"
)

func open(t *testing.T) (*Manager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return m, path
}

func TestOpenCreatesHeader(t *testing.T) {
	m, path := open(t)
	if m.NumPages() != 1 {
		t.Errorf("fresh file NumPages = %d, want 1", m.NumPages())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if m2.NumPages() != 1 {
		t.Errorf("reopened NumPages = %d, want 1", m2.NumPages())
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	junk := bytes.Repeat([]byte("not a database "), 10)
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("Open should reject a non-database file")
	}
}

func TestAllocateReadWrite(t *testing.T) {
	m, _ := open(t)
	defer m.Close()
	id, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("Allocate returned InvalidPage")
	}
	buf := make([]byte, page.Size)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := m.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	if err := m.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("page round trip corrupted")
	}
}

func TestAllocatePersistsAcrossReopen(t *testing.T) {
	m, path := open(t)
	a, _ := m.Allocate()
	b, _ := m.Allocate()
	if a == b {
		t.Fatal("duplicate page ids")
	}
	buf := bytes.Repeat([]byte{0xAB}, page.Size)
	m.WritePage(b, buf)
	m.Close()

	m2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", m2.NumPages())
	}
	got := make([]byte, page.Size)
	if err := m2.ReadPage(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("page contents lost across reopen")
	}
}

func TestFreeListReuse(t *testing.T) {
	m, path := open(t)
	a, _ := m.Allocate()
	bID, _ := m.Allocate()
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("freed page not reused: got %d, want %d", c, a)
	}
	// Free list persists across reopen.
	m.Free(bID)
	m.Close()
	m2, _ := Open(path)
	defer m2.Close()
	d, _ := m2.Allocate()
	if d != bID {
		t.Errorf("free list lost across reopen: got %d, want %d", d, bID)
	}
}

func TestFreeInvalid(t *testing.T) {
	m, _ := open(t)
	defer m.Close()
	if err := m.Free(InvalidPage); err == nil {
		t.Error("Free(0) should fail")
	}
	if err := m.Free(99); err == nil {
		t.Error("Free of unallocated page should fail")
	}
}

func TestReadWriteErrors(t *testing.T) {
	m, _ := open(t)
	defer m.Close()
	small := make([]byte, 10)
	if err := m.ReadPage(1, small); err == nil {
		t.Error("short buffer read should fail")
	}
	if err := m.WritePage(1, small); err == nil {
		t.Error("short buffer write should fail")
	}
	full := make([]byte, page.Size)
	if err := m.ReadPage(InvalidPage, full); err == nil {
		t.Error("read page 0 should fail")
	}
	if err := m.WritePage(InvalidPage, full); err == nil {
		t.Error("write page 0 should fail")
	}
	if err := m.ReadPage(50, full); err == nil {
		t.Error("read beyond EOF should fail")
	}
}

func TestEnsureAllocated(t *testing.T) {
	m, _ := open(t)
	defer m.Close()
	if err := m.EnsureAllocated(5); err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 6 {
		t.Errorf("NumPages = %d, want 6", m.NumPages())
	}
	buf := make([]byte, page.Size)
	if err := m.ReadPage(5, buf); err != nil {
		t.Errorf("page 5 unreadable after EnsureAllocated: %v", err)
	}
	// Idempotent for already-allocated pages.
	if err := m.EnsureAllocated(2); err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 6 {
		t.Error("EnsureAllocated shrank or grew unexpectedly")
	}
}
