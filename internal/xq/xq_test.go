package xq

import (
	"strings"
	"testing"
)

// The paper's three figure queries, normalised to underscore names.
const (
	figure8 = `FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number`

	figure9 = `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description`

	figure11 = `FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description`
)

func TestParseFigure8(t *testing.T) {
	q, err := Parse(figure8)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.For) != 2 {
		t.Fatalf("bindings = %d", len(q.For))
	}
	if q.For[0].Var != "a" || q.For[0].Path.Doc != "hlx_embl.inv" {
		t.Errorf("binding a = %+v", q.For[0])
	}
	if q.For[1].Path.Doc != "hlx_sprot.all" {
		t.Errorf("binding b = %+v", q.For[1])
	}
	and, ok := q.Where.(*And)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	l, ok := and.L.(*Contains)
	if !ok || l.Keyword != "cdc6" || !l.Any || l.Target.Var != "a" {
		t.Errorf("left contains = %+v", and.L)
	}
	if len(q.Return) != 2 {
		t.Fatalf("return = %d", len(q.Return))
	}
	r0 := q.Return[0]
	if r0.Path.Var != "b" || len(r0.Path.Steps) != 1 ||
		r0.Path.Steps[0].Axis != Descendant || r0.Path.Steps[0].Name != "sprot_accession_number" {
		t.Errorf("return[0] = %+v", r0.Path)
	}
	if r0.Name() != "sprot_accession_number" {
		t.Errorf("return[0] name = %q", r0.Name())
	}
}

func TestParseFigure9(t *testing.T) {
	q, err := Parse(figure9)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := q.Where.(*Contains)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if c.Any {
		t.Error("subtree contains should not be any")
	}
	if c.Target.Var != "a" || c.Target.Steps[0].Name != "catalytic_activity" {
		t.Errorf("target = %+v", c.Target)
	}
}

func TestParseFigure11(t *testing.T) {
	q, err := Parse(figure11)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := q.Where.(*Cmp)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if cmp.Op != "=" || cmp.Right == nil || cmp.Right.Var != "b" {
		t.Errorf("cmp = %+v", cmp)
	}
	qualStep := cmp.Left.Steps[0]
	if qualStep.Name != "qualifier" || len(qualStep.Preds) != 1 {
		t.Fatalf("qualifier step = %+v", qualStep)
	}
	pred := qualStep.Preds[0]
	if !pred.Path.Steps[0].IsAttr || pred.Path.Steps[0].Name != "qualifier_type" ||
		pred.Op != "=" || pred.Lit != "EC number" {
		t.Errorf("pred = %+v", pred)
	}
	if q.Return[0].Alias != "Accession_Number" {
		t.Errorf("alias = %q", q.Return[0].Alias)
	}
}

func TestSpacedNamesNormalised(t *testing.T) {
	// The paper prints "hlx embl.inv" and "hlx n sequence" with spaces.
	q, err := Parse(`FOR $a IN document("hlx embl.inv")/hlx_n_sequence RETURN $a//embl_accession_number`)
	if err != nil {
		t.Fatal(err)
	}
	if q.For[0].Path.Doc != "hlx_embl.inv" {
		t.Errorf("doc = %q", q.For[0].Path.Doc)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	for _, src := range []string{figure8, figure9, figure11} {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, q.String())
		}
		if q2.String() != q.String() {
			t.Errorf("unstable rendering:\n%s\nvs\n%s", q.String(), q2.String())
		}
	}
}

func TestParseLet(t *testing.T) {
	q, err := Parse(`FOR $a IN document("db")/root
LET $entry := $a/db_entry
WHERE $entry/enzyme_id = "1.1.1.1"
RETURN $entry/enzyme_description`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Let) != 1 || q.Let[0].Var != "entry" {
		t.Fatalf("let = %+v", q.Let)
	}
	resolved, err := q.ResolveLets()
	if err != nil {
		t.Fatal(err)
	}
	cmp := resolved.Where.(*Cmp)
	if cmp.Left.Var != "a" || len(cmp.Left.Steps) != 2 {
		t.Errorf("resolved where path = %s", cmp.Left.String())
	}
	if resolved.Return[0].Path.Var != "a" || len(resolved.Return[0].Path.Steps) != 2 {
		t.Errorf("resolved return path = %s", resolved.Return[0].Path.String())
	}
	if len(resolved.Let) != 0 {
		t.Error("lets should be gone after resolution")
	}
}

func TestParseOrderOps(t *testing.T) {
	q, err := Parse(`FOR $a IN document("db")/r
WHERE $a//x BEFORE $a//y AND $a//z AFTER $a//x
RETURN $a//x`)
	if err != nil {
		t.Fatal(err)
	}
	and := q.Where.(*And)
	before := and.L.(*Order)
	if !before.Before || before.Left.Steps[0].Name != "x" {
		t.Errorf("before = %+v", before)
	}
	after := and.R.(*Order)
	if after.Before {
		t.Error("AFTER parsed as BEFORE")
	}
}

func TestParseNumericComparison(t *testing.T) {
	q, err := Parse(`FOR $a IN document("db")/r WHERE $a//length > 400 RETURN $a//name`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(*Cmp)
	if !cmp.IsNum || cmp.Lit != "400" || cmp.Op != ">" {
		t.Errorf("cmp = %+v", cmp)
	}
}

func TestParseOrNotParens(t *testing.T) {
	q, err := Parse(`FOR $a IN document("db")/r
WHERE (contains($a//x, "k1") OR contains($a//x, "k2")) AND NOT $a//y = "bad"
RETURN $a//x`)
	if err != nil {
		t.Fatal(err)
	}
	and := q.Where.(*And)
	if _, ok := and.L.(*Or); !ok {
		t.Errorf("left = %T", and.L)
	}
	if _, ok := and.R.(*Not); !ok {
		t.Errorf("right = %T", and.R)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []string{
		// undefined variable in where
		`FOR $a IN document("d")/r WHERE $b//x = "1" RETURN $a//x`,
		// undefined variable in return
		`FOR $a IN document("d")/r RETURN $zz//x`,
		// duplicate binding
		`FOR $a IN document("d")/r, $a IN document("d")/r RETURN $a//x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	bad := []string{
		``,
		`RETURN $a`,
		`FOR a IN document("d")/r RETURN $a//x`,
		`FOR $a document("d")/r RETURN $a//x`,
		`FOR $a IN document(d)/r RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE contains($a//x) RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE contains($a//x, "k", sometimes) RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE $a//x = RETURN $a//x`,
		`FOR $a IN document("d")/r RETURN $a//x extra`,
		`FOR $a IN document("d")/r[@t = ] RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE $a//x[document("q")/y = "1"] = "2" RETURN $a//x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAttrLeaf(t *testing.T) {
	q := MustParse(`FOR $a IN document("d")/r RETURN $a//reference/@swissprot_accession_number`)
	steps := q.Return[0].Path.Steps
	last := steps[len(steps)-1]
	if !last.IsAttr || last.Name != "swissprot_accession_number" {
		t.Errorf("attr step = %+v", last)
	}
	if q.Return[0].Name() != "swissprot_accession_number" {
		t.Errorf("name = %q", q.Return[0].Name())
	}
}

func TestExprString(t *testing.T) {
	q := MustParse(figure11)
	s := ExprString(q.Where)
	if !strings.Contains(s, `[@qualifier_type = "EC number"]`) {
		t.Errorf("ExprString = %q", s)
	}
	q8 := MustParse(figure8)
	if !strings.Contains(ExprString(q8.Where), `, any)`) {
		t.Errorf("ExprString = %q", ExprString(q8.Where))
	}
}

func TestParseSeqContains(t *testing.T) {
	q, err := Parse(`FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE seqcontains($a//sequence_data, "ACGTACGT")
RETURN $a//embl_accession_number`)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := q.Where.(*SeqContains)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if sc.Motif != "ACGTACGT" || sc.Target.Steps[0].Name != "sequence_data" {
		t.Errorf("seqcontains = %+v", sc)
	}
	// Round trips through the canonical rendering.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if q2.String() != q.String() {
		t.Error("unstable rendering")
	}
	// Works through LET substitution.
	q3 := MustParse(`FOR $a IN document("d")/r
LET $s := $a//sequence_data
WHERE seqcontains($s, "acgt")
RETURN $a//id`)
	resolved, err := q3.ResolveLets()
	if err != nil {
		t.Fatal(err)
	}
	rsc := resolved.Where.(*SeqContains)
	if rsc.Target.Var != "a" || len(rsc.Target.Steps) != 1 {
		t.Errorf("resolved target = %s", rsc.Target.String())
	}
}

func TestParseSeqContainsErrors(t *testing.T) {
	bad := []string{
		`FOR $a IN document("d")/r WHERE seqcontains($a//s) RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE seqcontains($a//s, ) RETURN $a//x`,
		`FOR $a IN document("d")/r WHERE seqcontains($b//s, "x") RETURN $a//x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
