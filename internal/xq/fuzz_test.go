package xq

import "testing"

// FuzzParse feeds arbitrary text to the XomatiQ query parser. Accepted
// queries must render (String) back into text the parser accepts again —
// the plan cache and Explain both rely on renderings staying parseable.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`FOR $a IN document("db")/root RETURN $a`,
		`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description`,
		`FOR $e IN document("db")/r/e, $x IN document("db2")/s
WHERE $e/id = $x/ref AND contains($e/name, "kinase")
RETURN $e/id, $x/val`,
		`LET $s := document("db")/r/seq RETURN $s`,
		`FOR $a IN document("db")/r WHERE seqcontains($a/seq, "ACGT") RETURN $a`,
		`FOR $a IN document("db")/r WHERE NOT contains($a/x, "y") OR $a/n = "3" RETURN $a/x`,
		`FOR $a IN document("db")/r[2]/e RETURN $a`,
		``,
		`FOR`,
		`FOR $a IN document(`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		if _, rerr := Parse(rendered); rerr != nil {
			t.Fatalf("accepted %q but its rendering %q fails to parse: %v", src, rendered, rerr)
		}
	})
}
