// Package xq implements the XomatiQ query language: the FLWR
// (for-let-where-return) subset of the June-2001 XQuery working draft
// that the paper adopts, extended with the contains() keyword predicate
// ("simple keyword-based queries, similar to those found in web-based
// search engines") and the BEFORE/AFTER document-order operators its
// shredding schema exists to support.
//
// The three query figures of the paper parse verbatim (modulo the
// underscore normalisation of element names):
//
//	FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
//	    $b IN document("hlx_sprot.all")/hlx_n_sequence
//	WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
//	RETURN $b//sprot_accession_number, $a//embl_accession_number
package xq

import (
	"fmt"
	"strings"
)

// Query is one parsed FLWR query.
type Query struct {
	For    []Binding // iteration bindings, in order
	Let    []Binding // alias bindings
	Where  Expr      // nil when absent
	Return []ReturnItem
}

// Binding binds a variable to a path expression.
type Binding struct {
	Var  string // without '$'
	Path *PathExpr
}

// ReturnItem is one output column.
type ReturnItem struct {
	Alias string // optional "$Alias =" name; defaults from the path
	Path  *PathExpr
}

// Name returns the output column label.
func (r ReturnItem) Name() string {
	if r.Alias != "" {
		return r.Alias
	}
	if n := len(r.Path.Steps); n > 0 {
		return r.Path.Steps[n-1].Name
	}
	if r.Path.Var != "" {
		return r.Path.Var
	}
	return "value"
}

// PathExpr is a rooted path: document("db")/step... or $var/step...
type PathExpr struct {
	Doc   string // document("...") root; empty when rooted at Var
	Var   string // variable root; empty when rooted at Doc
	Steps []Step
}

// Axis distinguishes / from //.
type Axis uint8

// Axes.
const (
	Child Axis = iota
	Descendant
)

// Step is one location step.
type Step struct {
	Axis   Axis
	Name   string // element or attribute name
	IsAttr bool   // @name
	Preds  []Pred
}

// Pred is a step predicate: [relpath op literal] where relpath is a
// child/attribute path relative to the step.
type Pred struct {
	Path  *PathExpr // relative path (Doc and Var empty)
	Op    string    // = != < <= > >=
	Lit   string
	IsNum bool // literal was numeric: numeric comparison semantics
}

// String renders the path in query syntax.
func (p *PathExpr) String() string {
	var sb strings.Builder
	switch {
	case p.Doc != "":
		sb.WriteString(`document("` + p.Doc + `")`)
	case p.Var != "":
		sb.WriteString("$" + p.Var)
	}
	rootless := p.Doc == "" && p.Var == ""
	for i, s := range p.Steps {
		switch {
		case s.Axis == Descendant:
			sb.WriteString("//")
		case rootless && i == 0:
			// Relative predicate paths render without a leading slash.
		default:
			sb.WriteString("/")
		}
		if s.IsAttr {
			sb.WriteString("@")
		}
		sb.WriteString(s.Name)
		for _, pr := range s.Preds {
			lit := quoteLit(pr.Lit)
			if pr.IsNum {
				lit = pr.Lit
			}
			sb.WriteString("[" + pr.Path.String() + " " + pr.Op + " " + lit + "]")
		}
	}
	return sb.String()
}

func quoteLit(s string) string { return `"` + s + `"` }

// Expr is a WHERE-clause expression.
type Expr interface{ xqExpr() }

// Cmp compares a path's values with a literal or another path's values
// (existential semantics: true when any pair satisfies the operator).
type Cmp struct {
	Left  *PathExpr
	Op    string // = != < <= > >=
	Lit   string // literal form when RightPath is nil
	IsNum bool   // literal looked numeric
	Right *PathExpr
}

// Contains is the keyword extension: contains(path, "kw" [, any]).
// With Any (or a bare variable), the keyword may occur anywhere in the
// bound subtree; otherwise it must occur in the text of a matched node.
type Contains struct {
	Target  *PathExpr
	Keyword string
	Any     bool
}

// SeqContains is the sequence-search extension: seqcontains(path,
// "ACGT"). It matches residue substrings (case-insensitive) against the
// warehouse's sequence data — the paper's rationale for splitting
// sequence from non-sequence storage is that "types of queries posed on
// DNA or protein sequences are generally different from those posed on
// non-sequence data": motif search is substring search over seq_data,
// never keyword search.
type SeqContains struct {
	Target *PathExpr
	Motif  string
}

// Order is a BEFORE/AFTER document-order comparison.
type Order struct {
	Left   *PathExpr
	Before bool // true: BEFORE; false: AFTER
	Right  *PathExpr
}

// And, Or, Not combine conditions.
type And struct{ L, R Expr }

// Or is a disjunction.
type Or struct{ L, R Expr }

// Not negates a condition.
type Not struct{ E Expr }

func (*Cmp) xqExpr()         {}
func (*Contains) xqExpr()    {}
func (*SeqContains) xqExpr() {}
func (*Order) xqExpr()       {}
func (*And) xqExpr()         {}
func (*Or) xqExpr()          {}
func (*Not) xqExpr()         {}

// ExprString renders a WHERE expression in query syntax.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Cmp:
		rhs := quoteLit(e.Lit)
		if e.Right != nil {
			rhs = e.Right.String()
		} else if e.IsNum {
			rhs = e.Lit
		}
		return e.Left.String() + " " + e.Op + " " + rhs
	case *Contains:
		anyArg := ""
		if e.Any {
			anyArg = ", any"
		}
		return "contains(" + e.Target.String() + ", " + quoteLit(e.Keyword) + anyArg + ")"
	case *SeqContains:
		return "seqcontains(" + e.Target.String() + ", " + quoteLit(e.Motif) + ")"
	case *Order:
		op := "AFTER"
		if e.Before {
			op = "BEFORE"
		}
		return e.Left.String() + " " + op + " " + e.Right.String()
	case *And:
		return "(" + ExprString(e.L) + " AND " + ExprString(e.R) + ")"
	case *Or:
		return "(" + ExprString(e.L) + " OR " + ExprString(e.R) + ")"
	case *Not:
		return "NOT (" + ExprString(e.E) + ")"
	}
	return "?"
}

// Validate checks variable references: every path rooted at a variable
// must reference a FOR or LET binding defined earlier, and binding names
// must be unique.
func (q *Query) Validate() error {
	if len(q.For) == 0 {
		return fmt.Errorf("xq: query has no FOR bindings")
	}
	if len(q.Return) == 0 {
		return fmt.Errorf("xq: query has no RETURN items")
	}
	defined := map[string]bool{}
	checkPath := func(p *PathExpr, where string) error {
		if p.Var != "" && !defined[p.Var] {
			return fmt.Errorf("xq: %s references undefined variable $%s", where, p.Var)
		}
		return nil
	}
	for _, b := range append(append([]Binding{}, q.For...), q.Let...) {
		if err := checkPath(b.Path, "binding $"+b.Var); err != nil {
			return err
		}
		if defined[b.Var] {
			return fmt.Errorf("xq: duplicate binding $%s", b.Var)
		}
		if b.Path.Doc == "" && b.Path.Var == "" {
			return fmt.Errorf("xq: binding $%s has no document() or variable root", b.Var)
		}
		defined[b.Var] = true
	}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch e := e.(type) {
		case nil:
			return nil
		case *Cmp:
			if err := checkPath(e.Left, "comparison"); err != nil {
				return err
			}
			if e.Right != nil {
				return checkPath(e.Right, "comparison")
			}
			return nil
		case *Contains:
			return checkPath(e.Target, "contains()")
		case *SeqContains:
			return checkPath(e.Target, "seqcontains()")
		case *Order:
			if err := checkPath(e.Left, "order comparison"); err != nil {
				return err
			}
			return checkPath(e.Right, "order comparison")
		case *And:
			if err := checkExpr(e.L); err != nil {
				return err
			}
			return checkExpr(e.R)
		case *Or:
			if err := checkExpr(e.L); err != nil {
				return err
			}
			return checkExpr(e.R)
		case *Not:
			return checkExpr(e.E)
		}
		return fmt.Errorf("xq: unknown expression %T", e)
	}
	if err := checkExpr(q.Where); err != nil {
		return err
	}
	for _, r := range q.Return {
		if err := checkPath(r.Path, "return item"); err != nil {
			return err
		}
		if r.Path.Var == "" && r.Path.Doc == "" {
			return fmt.Errorf("xq: return item has no root")
		}
	}
	return nil
}

// String renders the query in canonical text form (the "Translate Query"
// button of the visual interface).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("FOR ")
	for i, b := range q.For {
		if i > 0 {
			sb.WriteString(",\n    ")
		}
		sb.WriteString("$" + b.Var + " IN " + b.Path.String())
	}
	for _, b := range q.Let {
		sb.WriteString("\nLET $" + b.Var + " := " + b.Path.String())
	}
	if q.Where != nil {
		sb.WriteString("\nWHERE " + ExprString(q.Where))
	}
	sb.WriteString("\nRETURN ")
	for i, r := range q.Return {
		if i > 0 {
			sb.WriteString(",\n       ")
		}
		if r.Alias != "" {
			sb.WriteString("$" + r.Alias + " = ")
		}
		sb.WriteString(r.Path.String())
	}
	return sb.String()
}

// ResolveLets substitutes LET bindings into all paths, yielding a query
// whose paths root only at FOR variables or documents.
func (q *Query) ResolveLets() (*Query, error) {
	lets := map[string]*PathExpr{}
	for _, b := range q.Let {
		p, err := substitute(b.Path, lets)
		if err != nil {
			return nil, err
		}
		lets[b.Var] = p
	}
	out := &Query{For: make([]Binding, len(q.For)), Return: make([]ReturnItem, len(q.Return))}
	for i, b := range q.For {
		p, err := substitute(b.Path, lets)
		if err != nil {
			return nil, err
		}
		out.For[i] = Binding{Var: b.Var, Path: p}
	}
	var substExpr func(e Expr) (Expr, error)
	substExpr = func(e Expr) (Expr, error) {
		switch e := e.(type) {
		case nil:
			return nil, nil
		case *Cmp:
			l, err := substitute(e.Left, lets)
			if err != nil {
				return nil, err
			}
			var r *PathExpr
			if e.Right != nil {
				if r, err = substitute(e.Right, lets); err != nil {
					return nil, err
				}
			}
			return &Cmp{Left: l, Op: e.Op, Lit: e.Lit, IsNum: e.IsNum, Right: r}, nil
		case *Contains:
			tgt, err := substitute(e.Target, lets)
			if err != nil {
				return nil, err
			}
			return &Contains{Target: tgt, Keyword: e.Keyword, Any: e.Any}, nil
		case *SeqContains:
			tgt, err := substitute(e.Target, lets)
			if err != nil {
				return nil, err
			}
			return &SeqContains{Target: tgt, Motif: e.Motif}, nil
		case *Order:
			l, err := substitute(e.Left, lets)
			if err != nil {
				return nil, err
			}
			r, err := substitute(e.Right, lets)
			if err != nil {
				return nil, err
			}
			return &Order{Left: l, Before: e.Before, Right: r}, nil
		case *And:
			l, err := substExpr(e.L)
			if err != nil {
				return nil, err
			}
			r, err := substExpr(e.R)
			if err != nil {
				return nil, err
			}
			return &And{L: l, R: r}, nil
		case *Or:
			l, err := substExpr(e.L)
			if err != nil {
				return nil, err
			}
			r, err := substExpr(e.R)
			if err != nil {
				return nil, err
			}
			return &Or{L: l, R: r}, nil
		case *Not:
			inner, err := substExpr(e.E)
			if err != nil {
				return nil, err
			}
			return &Not{E: inner}, nil
		}
		return nil, fmt.Errorf("xq: unknown expression %T", e)
	}
	w, err := substExpr(q.Where)
	if err != nil {
		return nil, err
	}
	out.Where = w
	for i, r := range q.Return {
		p, err := substitute(r.Path, lets)
		if err != nil {
			return nil, err
		}
		out.Return[i] = ReturnItem{Alias: r.Alias, Path: p}
	}
	return out, nil
}

func substitute(p *PathExpr, lets map[string]*PathExpr) (*PathExpr, error) {
	steps := make([]Step, len(p.Steps))
	for i, s := range p.Steps {
		ns := s
		ns.Preds = make([]Pred, len(s.Preds))
		for j, pr := range s.Preds {
			sub, err := substitute(pr.Path, lets)
			if err != nil {
				return nil, err
			}
			ns.Preds[j] = Pred{Path: sub, Op: pr.Op, Lit: pr.Lit, IsNum: pr.IsNum}
		}
		steps[i] = ns
	}
	if p.Var != "" {
		if base, ok := lets[p.Var]; ok {
			merged := &PathExpr{Doc: base.Doc, Var: base.Var}
			merged.Steps = append(append([]Step{}, base.Steps...), steps...)
			return merged, nil
		}
	}
	return &PathExpr{Doc: p.Doc, Var: p.Var, Steps: steps}, nil
}
