package xq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses one XomatiQ query.
func Parse(src string) (*Query, error) {
	p := &qparser{src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses or panics (tests and fixtures).
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("xq: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *qparser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// keyword consumes kw case-insensitively when it appears as a whole word.
func (p *qparser) keyword(kw string) bool {
	p.skipSpace()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) && isWordByte(p.src[end]) {
		return false
	}
	p.pos = end
	return true
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *qparser) symbol(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *qparser) peekByte() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// name lexes an XML-ish name (letters, digits, _, -, .).
func (p *qparser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if c == '_' || c == '-' || c == '.' || unicode.IsLetter(c) || unicode.IsDigit(c) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.src[start:p.pos], nil
}

func (p *qparser) variable() (string, error) {
	p.skipSpace()
	if p.peekByte() != '$' {
		return "", p.errf("expected variable")
	}
	p.pos++
	return p.name()
}

func (p *qparser) stringLit() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected string literal")
	}
	q := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], q)
	if end < 0 {
		return "", p.errf("unterminated string literal")
	}
	s := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return s, nil
}

func (p *qparser) query() (*Query, error) {
	q := &Query{}
	if !p.keyword("FOR") {
		return nil, p.errf("query must begin with FOR")
	}
	for {
		b, err := p.binding(" IN ")
		if err != nil {
			return nil, err
		}
		q.For = append(q.For, b)
		if !p.symbol(",") {
			break
		}
		// A LET/WHERE/RETURN may follow a trailing comma misuse; the
		// binding parser will report it.
	}
	for p.keyword("LET") {
		b, err := p.binding(" := ")
		if err != nil {
			return nil, err
		}
		q.Let = append(q.Let, b)
		for p.symbol(",") {
			b, err := p.binding(" := ")
			if err != nil {
				return nil, err
			}
			q.Let = append(q.Let, b)
		}
	}
	if p.keyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if !p.keyword("RETURN") {
		return nil, p.errf("expected RETURN")
	}
	for {
		item, err := p.returnItem()
		if err != nil {
			return nil, err
		}
		q.Return = append(q.Return, item)
		if !p.symbol(",") {
			break
		}
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected trailing content %q", snippet(p.src[p.pos:]))
	}
	return q, nil
}

func snippet(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}

func (p *qparser) binding(sep string) (Binding, error) {
	v, err := p.variable()
	if err != nil {
		return Binding{}, err
	}
	switch strings.TrimSpace(sep) {
	case "IN":
		if !p.keyword("IN") {
			return Binding{}, p.errf("expected IN after $%s", v)
		}
	case ":=":
		if !p.symbol(":=") {
			return Binding{}, p.errf("expected := after $%s", v)
		}
	}
	path, err := p.pathExpr()
	if err != nil {
		return Binding{}, err
	}
	return Binding{Var: v, Path: path}, nil
}

func (p *qparser) returnItem() (ReturnItem, error) {
	// "$Alias = path" or bare path.
	save := p.pos
	if p.peekByte() == '$' {
		v, err := p.variable()
		if err != nil {
			return ReturnItem{}, err
		}
		if p.symbol("=") {
			path, err := p.pathExpr()
			if err != nil {
				return ReturnItem{}, err
			}
			return ReturnItem{Alias: v, Path: path}, nil
		}
		p.pos = save
	}
	path, err := p.pathExpr()
	if err != nil {
		return ReturnItem{}, err
	}
	return ReturnItem{Path: path}, nil
}

// pathExpr parses document("db")steps, $var steps, or a relative path
// (inside predicates).
func (p *qparser) pathExpr() (*PathExpr, error) {
	pe := &PathExpr{}
	p.skipSpace()
	switch {
	case p.keyword("document"):
		if !p.symbol("(") {
			return nil, p.errf(`expected ( after document`)
		}
		db, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, p.errf("expected ) after document name")
		}
		pe.Doc = normalizeDocName(db)
	case p.peekByte() == '$':
		v, err := p.variable()
		if err != nil {
			return nil, err
		}
		pe.Var = v
	case p.peekByte() == '/':
		// Rootless absolute-style path (predicate context): steps only.
	default:
		// Relative path beginning with a name or @attribute.
		return p.relativeSteps(pe)
	}
	return p.steps(pe)
}

// relativeSteps parses "name/name/@attr" (predicate-relative form).
func (p *qparser) relativeSteps(pe *PathExpr) (*PathExpr, error) {
	for {
		step := Step{Axis: Child}
		if p.peekByte() == '@' {
			p.pos++
			step.IsAttr = true
		}
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		step.Name = normalizeName(n)
		pe.Steps = append(pe.Steps, step)
		if step.IsAttr {
			return pe, nil
		}
		if !p.symbol("/") {
			return pe, nil
		}
	}
}

func (p *qparser) steps(pe *PathExpr) (*PathExpr, error) {
	for {
		var axis Axis
		switch {
		case p.symbol("//"):
			axis = Descendant
		case p.symbol("/"):
			axis = Child
		default:
			if len(pe.Steps) == 0 && pe.Doc == "" && pe.Var == "" {
				return nil, p.errf("expected path expression")
			}
			return pe, nil
		}
		step := Step{Axis: axis}
		if p.peekByte() == '@' {
			p.pos++
			step.IsAttr = true
		}
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		step.Name = normalizeName(n)
		// Predicates.
		for p.symbol("[") {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			step.Preds = append(step.Preds, pred)
			if !p.symbol("]") {
				return nil, p.errf("expected ] after predicate")
			}
		}
		pe.Steps = append(pe.Steps, step)
		if step.IsAttr {
			return pe, nil // attributes are leaves
		}
	}
}

func (p *qparser) predicate() (Pred, error) {
	path, err := p.pathExpr()
	if err != nil {
		return Pred{}, err
	}
	if path.Doc != "" || path.Var != "" {
		return Pred{}, p.errf("predicate paths must be relative")
	}
	op, err := p.compOp()
	if err != nil {
		return Pred{}, err
	}
	lit, isNum, err := p.literal()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Path: path, Op: op, Lit: lit, IsNum: isNum}, nil
}

func (p *qparser) compOp() (string, error) {
	p.skipSpace()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			p.pos += len(op)
			return op, nil
		}
	}
	return "", p.errf("expected comparison operator")
}

// literal parses a string or numeric literal; isNum reports the latter.
func (p *qparser) literal() (string, bool, error) {
	p.skipSpace()
	if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
		s, err := p.stringLit()
		return s, false, err
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", false, p.errf("expected literal")
	}
	lit := p.src[start:p.pos]
	if _, err := strconv.ParseFloat(lit, 64); err != nil {
		return "", false, p.errf("bad numeric literal %q", lit)
	}
	return lit, true, nil
}

// orExpr := andExpr { OR andExpr }
func (p *qparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *qparser) notExpr() (Expr, error) {
	if p.keyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.condition()
}

func (p *qparser) condition() (Expr, error) {
	p.skipSpace()
	if p.symbol("(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, p.errf("expected )")
		}
		return e, nil
	}
	if p.keyword("seqcontains") {
		if !p.symbol("(") {
			return nil, p.errf("expected ( after seqcontains")
		}
		target, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		if !p.symbol(",") {
			return nil, p.errf("expected , in seqcontains()")
		}
		motif, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, p.errf("expected ) after seqcontains()")
		}
		return &SeqContains{Target: target, Motif: motif}, nil
	}
	if p.keyword("contains") {
		if !p.symbol("(") {
			return nil, p.errf("expected ( after contains")
		}
		target, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		if !p.symbol(",") {
			return nil, p.errf("expected , in contains()")
		}
		kw, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		anyFlag := false
		if p.symbol(",") {
			if !p.keyword("any") {
				return nil, p.errf(`expected "any" as third contains() argument`)
			}
			anyFlag = true
		}
		if !p.symbol(")") {
			return nil, p.errf("expected ) after contains()")
		}
		// A bare variable target is implicitly "anywhere in the subtree".
		if len(target.Steps) == 0 {
			anyFlag = true
		}
		return &Contains{Target: target, Keyword: kw, Any: anyFlag}, nil
	}
	// Path comparison: path op (literal | path) or path BEFORE/AFTER path.
	left, err := p.pathExpr()
	if err != nil {
		return nil, err
	}
	if p.keyword("BEFORE") {
		right, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		return &Order{Left: left, Before: true, Right: right}, nil
	}
	if p.keyword("AFTER") {
		right, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		return &Order{Left: left, Before: false, Right: right}, nil
	}
	op, err := p.compOp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && (p.src[p.pos] == '$' || strings.HasPrefix(strings.ToLower(p.src[p.pos:]), "document")) {
		right, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		return &Cmp{Left: left, Op: op, Right: right}, nil
	}
	lit, isNum, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &Cmp{Left: left, Op: op, Lit: lit, IsNum: isNum}, nil
}

// normalizeDocName maps the paper's spaced names ("hlx embl.inv") to the
// underscore form the warehouse registers.
func normalizeDocName(s string) string { return strings.ReplaceAll(s, " ", "_") }

// normalizeName likewise normalises element names typed with spaces.
func normalizeName(s string) string { return strings.ReplaceAll(s, " ", "_") }
