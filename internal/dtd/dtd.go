// Package dtd implements Document Type Definitions: parsing, validation
// of documents against content models, inference of a DTD from document
// instances, and rendering. The Data Hounds "involve specifying a set of
// DTDs for every kind of data in the remote biological sources"; XomatiQ
// displays DTD structures in its query interface so users can click
// elements to build queries.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Occurs is a content-particle quantifier.
type Occurs uint8

// Quantifiers.
const (
	One  Occurs = iota
	Opt         // ?
	Star        // *
	Plus        // +
)

func (o Occurs) String() string {
	switch o {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	}
	return ""
}

// ParticleKind classifies content particles.
type ParticleKind uint8

// Particle kinds.
const (
	PName   ParticleKind = iota // element name
	PSeq                        // (a, b, c)
	PChoice                     // (a | b | c)
)

// Particle is one node of a content model expression.
type Particle struct {
	Kind     ParticleKind
	Name     string // for PName
	Children []*Particle
	Occurs   Occurs
}

// ContentKind classifies an element's declared content.
type ContentKind uint8

// Content kinds.
const (
	CEmpty    ContentKind = iota // EMPTY
	CAny                         // ANY
	CPCData                      // (#PCDATA)
	CMixed                       // (#PCDATA | a | b)*
	CChildren                    // element content
)

// Element is one <!ELEMENT> declaration.
type Element struct {
	Name    string
	Content ContentKind
	Mixed   []string  // allowed element names for CMixed
	Model   *Particle // for CChildren
}

// AttrType classifies attribute declarations.
type AttrType uint8

// Attribute types (the subset biological DTDs use).
const (
	AttrCDATA AttrType = iota
	AttrNMTOKEN
	AttrID
	AttrIDRef
	AttrEnum
)

// AttrDefault classifies attribute defaults.
type AttrDefault uint8

// Attribute default kinds.
const (
	DefImplied AttrDefault = iota
	DefRequired
	DefFixed
	DefValue
)

// Attr is one attribute in an <!ATTLIST> declaration.
type Attr struct {
	Element string
	Name    string
	Type    AttrType
	Enum    []string
	Default AttrDefault
	Value   string // for DefFixed / DefValue
}

// DTD is a parsed document type definition.
type DTD struct {
	Root     string // the first declared element, by convention
	Elements map[string]*Element
	Attrs    map[string][]*Attr // element -> attributes in declaration order
	order    []string           // element declaration order
}

// New returns an empty DTD.
func New() *DTD {
	return &DTD{Elements: make(map[string]*Element), Attrs: make(map[string][]*Attr)}
}

// ElementNames returns element names in declaration order.
func (d *DTD) ElementNames() []string { return append([]string(nil), d.order...) }

// addElement registers a declaration, keeping order.
func (d *DTD) addElement(e *Element) error {
	if _, dup := d.Elements[e.Name]; dup {
		return fmt.Errorf("dtd: duplicate element declaration %q", e.Name)
	}
	d.Elements[e.Name] = e
	d.order = append(d.order, e.Name)
	if d.Root == "" {
		d.Root = e.Name
	}
	return nil
}

// String renders the DTD as declaration text.
func (d *DTD) String() string {
	var sb strings.Builder
	for _, name := range d.order {
		e := d.Elements[name]
		sb.WriteString("<!ELEMENT " + name + " " + contentString(e) + ">\n")
		if attrs := d.Attrs[name]; len(attrs) > 0 {
			sb.WriteString("<!ATTLIST " + name)
			for _, a := range attrs {
				sb.WriteString("\n  " + a.Name + " " + attrTypeString(a) + " " + attrDefaultString(a))
			}
			sb.WriteString(">\n")
		}
	}
	return sb.String()
}

func contentString(e *Element) string {
	switch e.Content {
	case CEmpty:
		return "EMPTY"
	case CAny:
		return "ANY"
	case CPCData:
		return "(#PCDATA)"
	case CMixed:
		if len(e.Mixed) == 0 {
			return "(#PCDATA)*"
		}
		return "(#PCDATA | " + strings.Join(e.Mixed, " | ") + ")*"
	case CChildren:
		s := particleString(e.Model)
		if e.Model.Kind == PName {
			s = "(" + s + ")" // a bare name needs a group to reparse
		}
		return s
	}
	return "ANY"
}

func particleString(p *Particle) string {
	switch p.Kind {
	case PName:
		return p.Name + p.Occurs.String()
	case PSeq:
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = particleString(c)
		}
		return "(" + strings.Join(parts, ", ") + ")" + p.Occurs.String()
	case PChoice:
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = particleString(c)
		}
		return "(" + strings.Join(parts, " | ") + ")" + p.Occurs.String()
	}
	return "()"
}

func attrTypeString(a *Attr) string {
	switch a.Type {
	case AttrNMTOKEN:
		return "NMTOKEN"
	case AttrID:
		return "ID"
	case AttrIDRef:
		return "IDREF"
	case AttrEnum:
		return "(" + strings.Join(a.Enum, " | ") + ")"
	}
	return "CDATA"
}

func attrDefaultString(a *Attr) string {
	switch a.Default {
	case DefRequired:
		return "#REQUIRED"
	case DefFixed:
		return `#FIXED "` + a.Value + `"`
	case DefValue:
		return `"` + a.Value + `"`
	}
	return "#IMPLIED"
}

// Tree renders the DTD as an indented structure tree rooted at the root
// element — the view the XomatiQ GUI's left panel shows (Fig. 7a). Cycles
// and repeated types print with an ellipsis.
func (d *DTD) Tree() string {
	var sb strings.Builder
	var walk func(name string, depth int, seen map[string]bool, suffix string)
	walk = func(name string, depth int, seen map[string]bool, suffix string) {
		pad := strings.Repeat("  ", depth)
		attrs := ""
		for _, a := range d.Attrs[name] {
			attrs += " @" + a.Name
		}
		e := d.Elements[name]
		if e == nil {
			sb.WriteString(pad + name + suffix + " (undeclared)\n")
			return
		}
		if seen[name] {
			sb.WriteString(pad + name + suffix + " ...\n")
			return
		}
		seen[name] = true
		defer delete(seen, name)
		kind := ""
		switch e.Content {
		case CPCData:
			kind = " #PCDATA"
		case CEmpty:
			kind = " EMPTY"
		case CMixed:
			kind = " mixed"
		}
		sb.WriteString(pad + name + suffix + kind + attrs + "\n")
		var each func(p *Particle)
		each = func(p *Particle) {
			switch p.Kind {
			case PName:
				walk(p.Name, depth+1, seen, p.Occurs.String())
			default:
				for _, c := range p.Children {
					each(c)
				}
			}
		}
		if e.Content == CChildren && e.Model != nil {
			each(e.Model)
		}
		for _, m := range e.Mixed {
			walk(m, depth+1, seen, "*")
		}
	}
	if d.Root != "" {
		walk(d.Root, 0, map[string]bool{}, "")
	}
	return sb.String()
}

// names returns the sorted element names mentioned by a particle.
func (p *Particle) names(out map[string]bool) {
	if p == nil {
		return
	}
	if p.Kind == PName {
		out[p.Name] = true
	}
	for _, c := range p.Children {
		c.names(out)
	}
}

// ReferencedNames lists element names referenced by content models but
// never declared (schema lint used by the hounds when authoring DTDs).
func (d *DTD) ReferencedNames() (undeclared []string) {
	ref := map[string]bool{}
	for _, e := range d.Elements {
		if e.Model != nil {
			e.Model.names(ref)
		}
		for _, m := range e.Mixed {
			ref[m] = true
		}
	}
	for n := range ref {
		if _, ok := d.Elements[n]; !ok {
			undeclared = append(undeclared, n)
		}
	}
	sort.Strings(undeclared)
	return undeclared
}
