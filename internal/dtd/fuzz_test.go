package dtd

import "testing"

// FuzzParse feeds arbitrary text to the DTD parser. Accepted DTDs must
// render (String) back into text the parser accepts: the shred store
// persists DTDs as text and re-parses them for the GUI structure tree.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<!ELEMENT r (a, b*)> <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)>`,
		`<!ELEMENT hlx_enzyme (db_entry+)>
<!ELEMENT db_entry (enzyme_id, enzyme_description?, catalytic_activity*)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ATTLIST db_entry status CDATA #IMPLIED>`,
		`<!ELEMENT r (a | b)+> <!ELEMENT a EMPTY> <!ELEMENT b ANY>`,
		`<!ELEMENT x ((a, b) | (c?, d*))>`,
		``,
		`<!ELEMENT`,
		`<!ATTLIST e a ID #REQUIRED>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		rendered := d.String()
		if _, rerr := Parse(rendered); rerr != nil {
			t.Fatalf("accepted %q but its rendering %q fails to parse: %v", src, rendered, rerr)
		}
	})
}
