package dtd

import (
	"strings"
	"testing"

	"xomatiq/internal/xmldoc"
)

// enzymeDTD is the paper's Figure 5 DTD (underscored names).
const enzymeDTD = `
<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id, enzyme_description+, alternate_name_list,
  catalytic_activity*, cofactor_list, comment_list, prosite_reference*,
  swissprot_reference_list, disease_list)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT prosite_reference (#PCDATA)>
<!ATTLIST prosite_reference
  prosite_accession_number NMTOKEN #REQUIRED>
<!ELEMENT swissprot_reference_list (reference*)>
<!ELEMENT reference (#PCDATA)>
<!ATTLIST reference
  name CDATA #REQUIRED
  swissprot_accession_number NMTOKEN #REQUIRED>
<!ELEMENT disease_list (disease*)>
<!ELEMENT disease (#PCDATA)>
<!ATTLIST disease mim_id CDATA #REQUIRED>
`

const validEnzymeDoc = `<hlx_enzyme><db_entry>
  <enzyme_id>1.14.17.3</enzyme_id>
  <enzyme_description>Peptidylglycine monooxygenase.</enzyme_description>
  <alternate_name_list>
    <alternate_name>Peptidyl alpha-amidating enzyme</alternate_name>
  </alternate_name_list>
  <catalytic_activity>Peptidylglycine + ascorbate + O(2)</catalytic_activity>
  <cofactor_list><cofactor>Copper</cofactor></cofactor_list>
  <comment_list><comment>Best substrates have a neutral residue.</comment></comment_list>
  <prosite_reference prosite_accession_number="PDOC00080">PROSITE</prosite_reference>
  <swissprot_reference_list>
    <reference name="AMD_BOVIN" swissprot_accession_number="P10731">ref</reference>
  </swissprot_reference_list>
  <disease_list/>
</db_entry></hlx_enzyme>`

func TestParseEnzymeDTD(t *testing.T) {
	d, err := Parse(enzymeDTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "hlx_enzyme" {
		t.Errorf("root = %q", d.Root)
	}
	if len(d.Elements) != 16 {
		t.Errorf("elements = %d", len(d.Elements))
	}
	entry := d.Elements["db_entry"]
	if entry.Content != CChildren || entry.Model.Kind != PSeq || len(entry.Model.Children) != 9 {
		t.Fatalf("db_entry model = %+v", entry.Model)
	}
	if entry.Model.Children[1].Occurs != Plus || entry.Model.Children[3].Occurs != Star {
		t.Error("quantifiers not parsed")
	}
	attrs := d.Attrs["reference"]
	if len(attrs) != 2 || attrs[0].Default != DefRequired || attrs[1].Type != AttrNMTOKEN {
		t.Errorf("reference attrs = %+v", attrs)
	}
	if und := d.ReferencedNames(); len(und) != 0 {
		t.Errorf("undeclared refs = %v", und)
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	d := MustParse(enzymeDTD)
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse rendered DTD: %v\n%s", err, d.String())
	}
	if len(d2.Elements) != len(d.Elements) || d2.Root != d.Root {
		t.Error("round trip lost declarations")
	}
	if d2.String() != d.String() {
		t.Error("rendering not stable")
	}
}

func TestValidateValid(t *testing.T) {
	d := MustParse(enzymeDTD)
	doc := xmldoc.MustParse(validEnzymeDoc)
	if errs := d.Validate(doc); len(errs) != 0 {
		t.Errorf("valid document rejected: %v", errs)
	}
}

func TestValidateViolations(t *testing.T) {
	d := MustParse(enzymeDTD)
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"wrong root", `<other/>`, "root element"},
		{"missing child", `<hlx_enzyme/>`, "do not match model"},
		{"undeclared element", `<hlx_enzyme><bogus/></hlx_enzyme>`, "not declared"},
		{"missing required attr",
			`<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>d</enzyme_description>
			 <alternate_name_list/><cofactor_list/><comment_list/>
			 <prosite_reference>p</prosite_reference>
			 <swissprot_reference_list/><disease_list/></db_entry></hlx_enzyme>`,
			"required attribute"},
		{"text in element content", `<hlx_enzyme>stray text<db_entry><enzyme_id>x</enzyme_id><enzyme_description>d</enzyme_description><alternate_name_list/><cofactor_list/><comment_list/><swissprot_reference_list/><disease_list/></db_entry></hlx_enzyme>`,
			"character data"},
		{"out of order children",
			`<hlx_enzyme><db_entry><enzyme_description>d</enzyme_description><enzyme_id>x</enzyme_id><alternate_name_list/><cofactor_list/><comment_list/><swissprot_reference_list/><disease_list/></db_entry></hlx_enzyme>`,
			"do not match model"},
	}
	for _, c := range cases {
		doc, err := xmldoc.Parse(c.doc, xmldoc.ParseOptions{})
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		errs := d.Validate(doc)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: expected violation containing %q, got %v", c.name, c.want, errs)
		}
	}
}

func TestValidateAttrTypes(t *testing.T) {
	d := MustParse(`
<!ELEMENT r EMPTY>
<!ATTLIST r
  tok NMTOKEN #IMPLIED
  mode (fast | slow) #IMPLIED
  ver CDATA #FIXED "1"
>`)
	check := func(doc string, wantErr bool, frag string) {
		t.Helper()
		errs := d.Validate(xmldoc.MustParse(doc))
		if (len(errs) > 0) != wantErr {
			t.Errorf("Validate(%s) errs = %v, wantErr %v", doc, errs, wantErr)
		}
		if wantErr && frag != "" && !strings.Contains(errs[0].Error(), frag) {
			t.Errorf("error %q does not mention %q", errs[0].Error(), frag)
		}
	}
	check(`<r tok="abc" mode="fast" ver="1"/>`, false, "")
	check(`<r tok="has space"/>`, true, "NMTOKEN")
	check(`<r mode="medium"/>`, true, "not in")
	check(`<r ver="2"/>`, true, "fixed")
	check(`<r unknown="x"/>`, true, "not declared")
}

func TestContentModelChoiceAndNesting(t *testing.T) {
	d := MustParse(`<!ELEMENT r ((a | b)+, c?)>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>`)
	valid := []string{
		`<r><a/></r>`,
		`<r><b/><a/><b/></r>`,
		`<r><a/><c/></r>`,
	}
	invalid := []string{
		`<r/>`,
		`<r><c/></r>`,
		`<r><a/><c/><c/></r>`,
		`<r><c/><a/></r>`,
	}
	for _, s := range valid {
		if errs := d.Validate(xmldoc.MustParse(s)); len(errs) != 0 {
			t.Errorf("%s should be valid: %v", s, errs)
		}
	}
	for _, s := range invalid {
		if errs := d.Validate(xmldoc.MustParse(s)); len(errs) == 0 {
			t.Errorf("%s should be invalid", s)
		}
	}
}

func TestMixedContent(t *testing.T) {
	d := MustParse(`<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>`)
	if errs := d.Validate(xmldoc.MustParse(`<p>text <em>emph</em> more</p>`)); len(errs) != 0 {
		t.Errorf("mixed content rejected: %v", errs)
	}
	d2 := MustParse(`<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)><!ELEMENT b EMPTY>`)
	if errs := d2.Validate(xmldoc.MustParse(`<p><b/></p>`)); len(errs) == 0 {
		t.Error("disallowed mixed child accepted")
	}
}

func TestAnyAndEmpty(t *testing.T) {
	d := MustParse(`<!ELEMENT r ANY><!ELEMENT e EMPTY>`)
	if errs := d.Validate(xmldoc.MustParse(`<r>text<e/></r>`)); len(errs) != 0 {
		t.Errorf("ANY rejected: %v", errs)
	}
	if errs := d.Validate(xmldoc.MustParse(`<r><e>oops</e></r>`)); len(errs) == 0 {
		t.Error("EMPTY with content accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<!ELEMENT r (a, b | c)>`, // mixed separators
		`<!ELEMENT r (a>`,
		`<!ELEMENT r (#PCDATA | a)>`, // mixed without *
		`<!ATTLIST r a BOGUS #IMPLIED>`,
		`<!ELEMENT r EMPTY><!ELEMENT r EMPTY>`,
		`<!BOGUS decl>`,
		`<!ATTLIST r a CDATA>`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestInferFromInstances(t *testing.T) {
	docs := []*xmldoc.Document{
		xmldoc.MustParse(`<e><id>1</id><name>a</name><name>b</name><ref acc="X"/></e>`),
		xmldoc.MustParse(`<e><id>2</id><name>c</name></e>`),
	}
	d := Infer(docs...)
	if d.Root != "e" {
		t.Errorf("root = %q", d.Root)
	}
	e := d.Elements["e"]
	if e.Content != CChildren {
		t.Fatalf("content = %v", e.Content)
	}
	model := particleString(e.Model)
	if !strings.Contains(model, "id") || !strings.Contains(model, "name+") || !strings.Contains(model, "ref?") {
		t.Errorf("inferred model = %s", model)
	}
	if d.Elements["id"].Content != CPCData {
		t.Error("id should be #PCDATA")
	}
	if d.Elements["ref"].Content != CEmpty {
		t.Error("ref should be EMPTY")
	}
	attrs := d.Attrs["ref"]
	if len(attrs) != 1 || attrs[0].Default != DefRequired {
		t.Errorf("ref attrs = %+v", attrs)
	}
	// Inferred DTD validates its inputs.
	for i, doc := range docs {
		if errs := d.Validate(doc); len(errs) != 0 {
			t.Errorf("doc %d rejected by inferred DTD: %v", i, errs)
		}
	}
}

func TestInferMixedAndInconsistent(t *testing.T) {
	docs := []*xmldoc.Document{
		xmldoc.MustParse(`<p>text <em>x</em></p>`),
		xmldoc.MustParse(`<p><em>y</em> tail</p>`),
	}
	d := Infer(docs...)
	if d.Elements["p"].Content != CMixed {
		t.Errorf("p content = %v", d.Elements["p"].Content)
	}
	// Inconsistent child order falls back to a repeated choice.
	docs2 := []*xmldoc.Document{
		xmldoc.MustParse(`<r><a/><b/></r>`),
		xmldoc.MustParse(`<r><b/><a/></r>`),
	}
	d2 := Infer(docs2...)
	m := d2.Elements["r"].Model
	if m.Kind != PChoice || m.Occurs != Star {
		t.Errorf("inconsistent order model = %s", particleString(m))
	}
	for i, doc := range docs2 {
		if errs := d2.Validate(doc); len(errs) != 0 {
			t.Errorf("doc %d rejected: %v", i, errs)
		}
	}
}

func TestTreeRendering(t *testing.T) {
	d := MustParse(enzymeDTD)
	tree := d.Tree()
	if !strings.HasPrefix(tree, "hlx_enzyme") {
		t.Errorf("tree should start at root:\n%s", tree)
	}
	for _, frag := range []string{"db_entry", "enzyme_description+", "alternate_name*", "@mim_id", "#PCDATA"} {
		if !strings.Contains(tree, frag) {
			t.Errorf("tree missing %q:\n%s", frag, tree)
		}
	}
	// Recursive DTDs terminate.
	rec := MustParse(`<!ELEMENT a (a?)>`)
	if !strings.Contains(rec.Tree(), "...") {
		t.Error("recursive tree should elide")
	}
}

func TestReferencedNamesUndeclared(t *testing.T) {
	d := MustParse(`<!ELEMENT r (missing, alsomissing?)>`)
	und := d.ReferencedNames()
	if len(und) != 2 || und[0] != "alsomissing" {
		t.Errorf("undeclared = %v", und)
	}
}
