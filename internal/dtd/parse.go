package dtd

import (
	"fmt"
	"strings"
)

// Parse reads DTD declarations (<!ELEMENT ...> and <!ATTLIST ...>) from
// src. Comments and parameter entities are skipped; unknown declarations
// are rejected.
func Parse(src string) (*DTD, error) {
	d := New()
	p := &dparser{src: src}
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return d, nil
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!ELEMENT"):
			p.pos += len("<!ELEMENT")
			if err := p.elementDecl(d); err != nil {
				return nil, err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!ATTLIST"):
			p.pos += len("<!ATTLIST")
			if err := p.attlistDecl(d); err != nil {
				return nil, err
			}
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			i := strings.Index(p.src[p.pos:], "?>")
			if i < 0 {
				return nil, p.errf("unterminated processing instruction")
			}
			p.pos += i + 2
		default:
			return nil, p.errf("unexpected content %q", snippet(p.src[p.pos:]))
		}
	}
}

// MustParse parses or panics; for embedded schema constants.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

func snippet(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}

type dparser struct {
	src string
	pos int
}

func (p *dparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("dtd: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *dparser) skipSpaceAndComments() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			if i := strings.Index(p.src[p.pos:], "-->"); i >= 0 {
				p.pos += i + 3
				continue
			}
			p.pos = len(p.src)
			return
		}
		return
	}
}

func (p *dparser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func isNameByte(c byte) bool {
	return c == '_' || c == ':' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c >= 0x80
}

func (p *dparser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.src[start:p.pos], nil
}

func (p *dparser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *dparser) peekByte() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *dparser) elementDecl(d *DTD) error {
	name, err := p.name()
	if err != nil {
		return err
	}
	e := &Element{Name: name}
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.src[p.pos:], "EMPTY"):
		p.pos += 5
		e.Content = CEmpty
	case strings.HasPrefix(p.src[p.pos:], "ANY"):
		p.pos += 3
		e.Content = CAny
	default:
		if err := p.contentModel(e); err != nil {
			return err
		}
	}
	if err := p.expect('>'); err != nil {
		return err
	}
	return d.addElement(e)
}

// contentModel parses "(...)" content: (#PCDATA), mixed, or children.
func (p *dparser) contentModel(e *Element) error {
	if err := p.expect('('); err != nil {
		return err
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "#PCDATA") {
		p.pos += len("#PCDATA")
		for {
			p.skipSpace()
			if p.peekByte() == '|' {
				p.pos++
				m, err := p.name()
				if err != nil {
					return err
				}
				e.Mixed = append(e.Mixed, m)
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return err
		}
		if p.pos < len(p.src) && p.src[p.pos] == '*' {
			p.pos++
		} else if len(e.Mixed) > 0 {
			return p.errf("mixed content must end with )*")
		}
		if len(e.Mixed) > 0 {
			e.Content = CMixed
		} else {
			e.Content = CPCData
		}
		return nil
	}
	// Children content: we've consumed '('; parse the group body.
	m, err := p.group()
	if err != nil {
		return err
	}
	e.Content = CChildren
	e.Model = m
	return nil
}

// group parses a content group whose '(' was already consumed, including
// the closing ')' and optional quantifier.
func (p *dparser) group() (*Particle, error) {
	var parts []*Particle
	sep := byte(0)
	for {
		cp, err := p.cp()
		if err != nil {
			return nil, err
		}
		parts = append(parts, cp)
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated group")
		}
		c := p.src[p.pos]
		if c == ',' || c == '|' {
			if sep != 0 && sep != c {
				return nil, p.errf("mixed ',' and '|' in one group")
			}
			sep = c
			p.pos++
			continue
		}
		if c == ')' {
			p.pos++
			break
		}
		return nil, p.errf("unexpected %q in content model", string(c))
	}
	kind := PSeq
	if sep == '|' {
		kind = PChoice
	}
	g := &Particle{Kind: kind, Children: parts}
	if len(parts) == 1 && parts[0].Occurs == One {
		// Collapse single-child groups, keeping the group quantifier.
		g = parts[0]
	}
	g.Occurs = p.occurs(g.Occurs)
	return g, nil
}

// cp parses one content particle: name or nested group, with quantifier.
func (p *dparser) cp() (*Particle, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		return p.group()
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	pt := &Particle{Kind: PName, Name: n}
	pt.Occurs = p.occurs(One)
	return pt, nil
}

func (p *dparser) occurs(base Occurs) Occurs {
	if p.pos >= len(p.src) {
		return base
	}
	switch p.src[p.pos] {
	case '?':
		p.pos++
		return Opt
	case '*':
		p.pos++
		return Star
	case '+':
		p.pos++
		return Plus
	}
	return base
}

func (p *dparser) attlistDecl(d *DTD) error {
	elem, err := p.name()
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '>' {
			p.pos++
			return nil
		}
		aname, err := p.name()
		if err != nil {
			return err
		}
		a := &Attr{Element: elem, Name: aname}
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "CDATA"):
			p.pos += 5
			a.Type = AttrCDATA
		case strings.HasPrefix(p.src[p.pos:], "NMTOKEN"):
			p.pos += 7
			a.Type = AttrNMTOKEN
		case strings.HasPrefix(p.src[p.pos:], "IDREF"):
			p.pos += 5
			a.Type = AttrIDRef
		case strings.HasPrefix(p.src[p.pos:], "ID"):
			p.pos += 2
			a.Type = AttrID
		case p.pos < len(p.src) && p.src[p.pos] == '(':
			p.pos++
			a.Type = AttrEnum
			for {
				v, err := p.name()
				if err != nil {
					return err
				}
				a.Enum = append(a.Enum, v)
				p.skipSpace()
				if p.peekByte() == '|' {
					p.pos++
					continue
				}
				break
			}
			if err := p.expect(')'); err != nil {
				return err
			}
		default:
			return p.errf("unknown attribute type for %q", aname)
		}
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "#REQUIRED"):
			p.pos += len("#REQUIRED")
			a.Default = DefRequired
		case strings.HasPrefix(p.src[p.pos:], "#IMPLIED"):
			p.pos += len("#IMPLIED")
			a.Default = DefImplied
		case strings.HasPrefix(p.src[p.pos:], "#FIXED"):
			p.pos += len("#FIXED")
			a.Default = DefFixed
			v, err := p.quoted()
			if err != nil {
				return err
			}
			a.Value = v
		default:
			v, err := p.quoted()
			if err != nil {
				return err
			}
			a.Default = DefValue
			a.Value = v
		}
		d.Attrs[elem] = append(d.Attrs[elem], a)
	}
}

func (p *dparser) quoted() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected quoted value")
	}
	q := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], q)
	if end < 0 {
		return "", p.errf("unterminated quoted value")
	}
	v := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return v, nil
}
