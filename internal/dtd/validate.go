package dtd

import (
	"fmt"
	"sort"
	"strings"

	"xomatiq/internal/xmldoc"
)

// nfa is a Thompson construction over element names for one content
// model: states with name-labelled and epsilon transitions.
type nfa struct {
	trans  []map[string][]int // state -> name -> next states
	eps    [][]int            // state -> epsilon next states
	start  int
	accept int
}

func newNFA() *nfa {
	n := &nfa{}
	n.start = n.state()
	n.accept = n.state()
	return n
}

func (n *nfa) state() int {
	n.trans = append(n.trans, map[string][]int{})
	n.eps = append(n.eps, nil)
	return len(n.trans) - 1
}

func (n *nfa) edge(from int, name string, to int) {
	n.trans[from][name] = append(n.trans[from][name], to)
}

func (n *nfa) epsEdge(from, to int) { n.eps[from] = append(n.eps[from], to) }

// build wires particle p between states from and to.
func (n *nfa) build(p *Particle, from, to int) {
	inner := func(a, b int) {
		switch p.Kind {
		case PName:
			n.edge(a, p.Name, b)
		case PSeq:
			cur := a
			for i, c := range p.Children {
				next := b
				if i < len(p.Children)-1 {
					next = n.state()
				}
				n.build(c, cur, next)
				cur = next
			}
			if len(p.Children) == 0 {
				n.epsEdge(a, b)
			}
		case PChoice:
			for _, c := range p.Children {
				n.build(c, a, b)
			}
		}
	}
	switch p.Occurs {
	case One:
		inner(from, to)
	case Opt:
		inner(from, to)
		n.epsEdge(from, to)
	case Star:
		mid := n.state()
		n.epsEdge(from, mid)
		inner(mid, mid)
		n.epsEdge(mid, to)
	case Plus:
		mid := n.state()
		inner(from, mid)
		inner(mid, mid)
		n.epsEdge(mid, to)
	}
}

// closure expands a state set through epsilon edges.
func (n *nfa) closure(set map[int]bool) {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// match reports whether the name sequence is accepted.
func (n *nfa) match(names []string) bool {
	cur := map[int]bool{n.start: true}
	n.closure(cur)
	for _, name := range names {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range n.trans[s][name] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		n.closure(next)
		cur = next
	}
	return cur[n.accept]
}

// compile builds the NFA for an element's children model.
func compile(p *Particle) *nfa {
	n := newNFA()
	n.build(p, n.start, n.accept)
	return n
}

// ValidationError describes one violation.
type ValidationError struct {
	Element string
	Msg     string
}

func (e ValidationError) Error() string { return fmt.Sprintf("dtd: <%s>: %s", e.Element, e.Msg) }

// Validate checks a document against the DTD, returning every violation
// (nil means valid).
func (d *DTD) Validate(doc *xmldoc.Document) []ValidationError {
	var errs []ValidationError
	compiled := map[string]*nfa{}
	var walk func(n *xmldoc.Node)
	walk = func(n *xmldoc.Node) {
		e := d.Elements[n.Name]
		if e == nil {
			errs = append(errs, ValidationError{n.Name, "element not declared"})
		} else {
			errs = append(errs, d.checkContent(e, n, compiled)...)
			errs = append(errs, d.checkAttrs(n)...)
		}
		for _, c := range n.Children {
			if c.Kind == xmldoc.KindElement {
				walk(c)
			}
		}
	}
	if doc.Root.Name != d.Root && d.Root != "" {
		errs = append(errs, ValidationError{doc.Root.Name, fmt.Sprintf("root element is %q, DTD declares %q", doc.Root.Name, d.Root)})
	}
	walk(doc.Root)
	return errs
}

func (d *DTD) checkContent(e *Element, n *xmldoc.Node, compiled map[string]*nfa) []ValidationError {
	var errs []ValidationError
	hasText := false
	var childNames []string
	for _, c := range n.Children {
		switch c.Kind {
		case xmldoc.KindText:
			if strings.TrimSpace(c.Data) != "" {
				hasText = true
			}
		case xmldoc.KindElement:
			childNames = append(childNames, c.Name)
		}
	}
	switch e.Content {
	case CAny:
	case CEmpty:
		if hasText || len(childNames) > 0 {
			errs = append(errs, ValidationError{n.Name, "declared EMPTY but has content"})
		}
	case CPCData:
		if len(childNames) > 0 {
			errs = append(errs, ValidationError{n.Name, fmt.Sprintf("declared (#PCDATA) but has element children %v", childNames)})
		}
	case CMixed:
		allowed := map[string]bool{}
		for _, m := range e.Mixed {
			allowed[m] = true
		}
		for _, cn := range childNames {
			if !allowed[cn] {
				errs = append(errs, ValidationError{n.Name, fmt.Sprintf("child <%s> not allowed in mixed content", cn)})
			}
		}
	case CChildren:
		if hasText {
			errs = append(errs, ValidationError{n.Name, "character data not allowed in element content"})
		}
		m := compiled[e.Name]
		if m == nil {
			m = compile(e.Model)
			compiled[e.Name] = m
		}
		if !m.match(childNames) {
			errs = append(errs, ValidationError{n.Name,
				fmt.Sprintf("children %v do not match model %s", childNames, particleString(e.Model))})
		}
	}
	return errs
}

func (d *DTD) checkAttrs(n *xmldoc.Node) []ValidationError {
	var errs []ValidationError
	decls := d.Attrs[n.Name]
	declared := map[string]*Attr{}
	for _, a := range decls {
		declared[a.Name] = a
	}
	for _, a := range n.Attrs {
		decl := declared[a.Name]
		if decl == nil {
			errs = append(errs, ValidationError{n.Name, fmt.Sprintf("attribute %q not declared", a.Name)})
			continue
		}
		switch decl.Type {
		case AttrEnum:
			ok := false
			for _, v := range decl.Enum {
				if v == a.Data {
					ok = true
					break
				}
			}
			if !ok {
				errs = append(errs, ValidationError{n.Name, fmt.Sprintf("attribute %q value %q not in %v", a.Name, a.Data, decl.Enum)})
			}
		case AttrNMTOKEN:
			if strings.ContainsAny(a.Data, " \t\n\r") || a.Data == "" {
				errs = append(errs, ValidationError{n.Name, fmt.Sprintf("attribute %q value %q is not an NMTOKEN", a.Name, a.Data)})
			}
		}
		if decl.Default == DefFixed && a.Data != decl.Value {
			errs = append(errs, ValidationError{n.Name, fmt.Sprintf("attribute %q must be fixed %q", a.Name, decl.Value)})
		}
	}
	for _, decl := range decls {
		if decl.Default == DefRequired {
			if _, ok := n.Attr(decl.Name); !ok {
				errs = append(errs, ValidationError{n.Name, fmt.Sprintf("required attribute %q missing", decl.Name)})
			}
		}
	}
	return errs
}

// Infer derives a DTD from document instances: the schema-discovery step
// a Data Hounds author runs before hand-tuning the mapping. Heuristics:
// an element with only text is (#PCDATA); with only elements, a sequence
// over the observed child-name order when consistent, else a repeated
// choice; with both, mixed content. Attribute declarations are CDATA,
// #REQUIRED when present on every instance.
func Infer(docs ...*xmldoc.Document) *DTD {
	type elemStat struct {
		hasText    bool
		hasElems   bool
		instances  int
		childSeqs  [][]string
		attrCounts map[string]int
	}
	stats := map[string]*elemStat{}
	var order []string
	stat := func(name string) *elemStat {
		s := stats[name]
		if s == nil {
			s = &elemStat{attrCounts: map[string]int{}}
			stats[name] = s
			order = append(order, name)
		}
		return s
	}
	var walk func(n *xmldoc.Node)
	walk = func(n *xmldoc.Node) {
		s := stat(n.Name)
		s.instances++
		var seq []string
		for _, c := range n.Children {
			switch c.Kind {
			case xmldoc.KindText:
				if strings.TrimSpace(c.Data) != "" {
					s.hasText = true
				}
			case xmldoc.KindElement:
				s.hasElems = true
				seq = append(seq, c.Name)
				walk(c)
			}
		}
		s.childSeqs = append(s.childSeqs, seq)
		for _, a := range n.Attrs {
			s.attrCounts[a.Name]++
		}
	}
	for _, doc := range docs {
		walk(doc.Root)
	}

	d := New()
	for _, name := range order {
		s := stats[name]
		e := &Element{Name: name}
		switch {
		case s.hasText && s.hasElems:
			e.Content = CMixed
			e.Mixed = distinctNames(s.childSeqs)
		case s.hasText:
			e.Content = CPCData
		case s.hasElems:
			e.Content = CChildren
			e.Model = inferModel(s.childSeqs)
		default:
			e.Content = CEmpty
		}
		d.addElement(e)
		var anames []string
		for a := range s.attrCounts {
			anames = append(anames, a)
		}
		sort.Strings(anames)
		for _, a := range anames {
			def := DefImplied
			if s.attrCounts[a] == s.instances {
				def = DefRequired
			}
			d.Attrs[name] = append(d.Attrs[name], &Attr{Element: name, Name: a, Type: AttrCDATA, Default: def})
		}
	}
	return d
}

func distinctNames(seqs [][]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, seq := range seqs {
		for _, n := range seq {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// inferModel builds a sequence model when every instance's children
// follow one name order (runs of repeats allowed), else a repeated
// choice over the observed names.
func inferModel(seqs [][]string) *Particle {
	// Collapse each sequence to its run order.
	runOrder := func(seq []string) []string {
		var out []string
		for _, n := range seq {
			if len(out) == 0 || out[len(out)-1] != n {
				out = append(out, n)
			}
		}
		return out
	}
	// Candidate global order: run order of the longest sequence; verify
	// every instance's run order is a subsequence of it.
	var longest []string
	for _, s := range seqs {
		ro := runOrder(s)
		if len(ro) > len(longest) {
			longest = ro
		}
	}
	consistent := true
	for _, s := range seqs {
		if !isSubsequence(runOrder(s), longest) {
			consistent = false
			break
		}
	}
	if !consistent || len(longest) == 0 {
		return &Particle{Kind: PChoice, Occurs: Star, Children: nameParticles(distinctNames(seqs))}
	}
	// Quantifier per name: min/max occurrences across instances.
	minC := map[string]int{}
	maxC := map[string]int{}
	for i, s := range seqs {
		counts := map[string]int{}
		for _, n := range s {
			counts[n]++
		}
		for _, n := range longest {
			c := counts[n]
			if i == 0 {
				minC[n] = c
			} else if c < minC[n] {
				minC[n] = c
			}
			if c > maxC[n] {
				maxC[n] = c
			}
		}
	}
	children := make([]*Particle, len(longest))
	for i, n := range longest {
		occ := One
		switch {
		case minC[n] == 0 && maxC[n] <= 1:
			occ = Opt
		case minC[n] == 0:
			occ = Star
		case maxC[n] > 1:
			occ = Plus
		}
		children[i] = &Particle{Kind: PName, Name: n, Occurs: occ}
	}
	if len(children) == 1 {
		return children[0]
	}
	return &Particle{Kind: PSeq, Children: children}
}

func nameParticles(names []string) []*Particle {
	out := make([]*Particle, len(names))
	for i, n := range names {
		out[i] = &Particle{Kind: PName, Name: n}
	}
	return out
}

func isSubsequence(sub, full []string) bool {
	i := 0
	for _, n := range full {
		if i < len(sub) && sub[i] == n {
			i++
		}
	}
	return i == len(sub)
}
