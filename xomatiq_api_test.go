package xomatiq_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"xomatiq"
)

// TestPublicSessionAPI drives the session surface purely through the
// package re-exports: options, per-session queries, wire results and
// the serialized error taxonomy.
func TestPublicSessionAPI(t *testing.T) {
	eng, err := xomatiq.Open(filepath.Join(t.TempDir(), "api.db"),
		xomatiq.WithMaxSessions(2),
		xomatiq.WithMaxInflightQueries(8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var flat bytes.Buffer
	if err := xomatiq.WriteEnzyme(&flat, xomatiq.GenEnzymes(10, xomatiq.GenOptions{Seed: 3})); err != nil {
		t.Fatal(err)
	}
	src := xomatiq.NewSimSource("expasy", flat.String())
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
		t.Fatal(err)
	}

	sess, err := eng.NewSession(context.Background(),
		xomatiq.WithDefaultDeadline(30*time.Second),
		xomatiq.WithSessionQueryWorkers(1),
		xomatiq.WithSessionTag("api-test"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const q = `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme WHERE $a//enzyme_id = "1.14.17.3" RETURN $a//enzyme_description`
	res, err := sess.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}

	// Wire round trip through the public helpers.
	back, err := xomatiq.ResultFromJSON(res.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.JSON(), res.JSON()) {
		t.Errorf("JSON round trip not stable:\n%s\n%s", back.JSON(), res.JSON())
	}

	// Error taxonomy through the public helpers.
	_, err = sess.Query(context.Background(), `FOR $a IN document("nope.DEFAULT")/x RETURN $a//y`)
	if xomatiq.ErrorCode(err) != xomatiq.CodeUnknownDatabase {
		t.Errorf("ErrorCode = %q, want %q", xomatiq.ErrorCode(err), xomatiq.CodeUnknownDatabase)
	}
	if we := xomatiq.WireError(err); we.Code != xomatiq.CodeUnknownDatabase {
		t.Errorf("WireError code = %q", we.Code)
	}
	decoded, err := xomatiq.ErrorFromJSON([]byte(`{"code":"unknown_database","message":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(decoded, xomatiq.ErrUnknownDatabase) {
		t.Errorf("decoded error does not match ErrUnknownDatabase")
	}

	// Session listing shows the tag and counters.
	found := false
	for _, info := range eng.Sessions() {
		if info.Tag == "api-test" {
			found = true
			if info.Queries != 2 || info.Errors != 1 {
				t.Errorf("session counters: %+v", info)
			}
		}
	}
	if !found {
		t.Error("tagged session missing from listing")
	}

	// MaxSessions admission: slot 2 is free, slot 3 is refused.
	s2, err := eng.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := eng.NewSession(context.Background()); !errors.Is(err, xomatiq.ErrTooManySessions) {
		t.Errorf("third session: err = %v, want ErrTooManySessions", err)
	}
}
