GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare bench-guard profile check fuzz crash

# Seconds of fuzzing per parser target.
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sql/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Machine-readable benchmark snapshot: run the E1-E16 suite with memory
# stats and archive it as BENCH_<date>.json. BENCHTIME is fixed (not
# time-based) so runs are comparable across commits.
BENCHTIME ?= 3x
BENCHOUT  ?= BENCH_$(shell date +%F).json

bench-json:
	$(GO) test -run xxx -bench . -benchtime $(BENCHTIME) -benchmem . \
		| tee $(BENCHOUT).txt \
		| $(GO) run ./cmd/benchjson > $(BENCHOUT)
	@echo "wrote $(BENCHOUT) (raw text in $(BENCHOUT).txt)"

# Contention inspection: run the concurrent query benchmark with mutex,
# block, and CPU profiling and drop the artifacts (plus the test binary
# pprof needs) under profiles/. Inspect with:
#   go tool pprof profiles/bench.test profiles/mutex.prof
PROFILEBENCH ?= BenchmarkQueryConcurrent
profile:
	@mkdir -p profiles
	$(GO) run ./cmd/benchjson -bench $(PROFILEBENCH) -benchtime $(BENCHTIME) \
		-profiledir profiles > profiles/bench.json
	@echo "profiles/ now holds mutex.prof block.prof cpu.prof bench.test bench.json"

# Regression gate: rerun the guarded benchmark and fail if ns/op
# regressed more than GUARDTOL against the committed baseline text.
# The $$ doubles survive Make so the regex anchors reach go test.
GUARDBENCH ?= BenchmarkQueryConcurrent/scan$$/clients=16$$/workers=1$$
GUARDBASE  ?= BENCH_E17_after.txt
GUARDTOL   ?= 0.10

bench-guard:
	$(GO) run ./cmd/benchjson -bench '$(GUARDBENCH)' -benchtime $(BENCHTIME) \
		-guard $(GUARDBASE) -tolerance $(GUARDTOL) > /dev/null

# Compare two raw benchmark text files (the .txt twins bench-json
# leaves next to the JSON) with benchstat, if installed.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "benchstat not installed; compare $(OLD) and $(NEW) by hand"; \
		echo "(get it with: go install golang.org/x/perf/cmd/benchstat@latest)"; \
		exit 1; }
	benchstat $(OLD) $(NEW)

check: vet build test race

# Fuzz each parser target for $(FUZZTIME); crashers persist under the
# package's testdata/fuzz/ directory and become regression seeds.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xq/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmldoc/

# Crash-point enumeration and fault-injection sweeps: every counted disk
# op is a crash or fault site; recovery must land on a committed boundary.
crash:
	$(GO) test -v -run 'Crash|FaultSweep' ./internal/sql/ ./internal/core/
