GO ?= go

.PHONY: all build vet test race bench check fuzz crash

# Seconds of fuzzing per parser target.
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sql/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: vet build test race

# Fuzz each parser target for $(FUZZTIME); crashers persist under the
# package's testdata/fuzz/ directory and become regression seeds.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xq/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmldoc/

# Crash-point enumeration and fault-injection sweeps: every counted disk
# op is a crash or fault site; recovery must land on a committed boundary.
crash:
	$(GO) test -v -run 'Crash|FaultSweep' ./internal/sql/ ./internal/core/
