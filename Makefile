GO ?= go

.PHONY: all build vet test test-plans test-tx race bench bench-json bench-compare bench-guard bench-server serve loadtest profile check fuzz crash

# Seconds of fuzzing per parser target.
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: test-plans
	$(GO) test ./...
	$(MAKE) bench-guard

# Golden-plan snapshot corpus: EXPLAIN output for every query under
# internal/sql/testdata/plans/ must match byte-for-byte. After an
# intentional planner change, regenerate with:
#   $(GO) test -run TestGoldenPlans ./internal/sql/ -update
test-plans:
	$(GO) test -run TestGoldenPlans ./internal/sql/

race:
	$(GO) test -race ./internal/core/... ./internal/sql/... ./internal/xq2sql/...

# Transaction suite: the MVCC/Tx API tests (snapshot isolation, write
# visibility, conflicts, admission) under the race detector, plus the
# crash sweep that pins a reader snapshot across every crash point of a
# concurrent load.
test-tx:
	$(GO) test -race -count=1 -run 'TestTx|TestQueryDuringLoadConsistency|TestHTTPTransactions|TestREPLTransaction' \
		./internal/core/ ./internal/server/ ./internal/console/
	$(GO) test -count=1 -run 'TestCrashSweepSnapshotReader' ./internal/sql/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Machine-readable benchmark snapshot: run the E1-E16 suite with memory
# stats and archive it as BENCH_<date>.json plus the raw text twin
# BENCH_<date>.txt. BENCHTIME is fixed (not time-based) so runs are
# comparable across commits.
BENCHTIME ?= 3x
BENCHSTEM ?= BENCH_$(shell date +%F)

bench-json:
	$(GO) test -run xxx -bench . -benchtime $(BENCHTIME) -benchmem . \
		| tee $(BENCHSTEM).txt \
		| $(GO) run ./cmd/benchjson > $(BENCHSTEM).json
	@echo "wrote $(BENCHSTEM).json (raw text in $(BENCHSTEM).txt)"

# Contention inspection: run the concurrent query benchmark with mutex,
# block, and CPU profiling and drop the artifacts (plus the test binary
# pprof needs) under profiles/. Inspect with:
#   go tool pprof profiles/bench.test profiles/mutex.prof
PROFILEBENCH ?= BenchmarkQueryConcurrent
profile:
	@mkdir -p profiles
	$(GO) run ./cmd/benchjson -bench $(PROFILEBENCH) -benchtime $(BENCHTIME) \
		-profiledir profiles > profiles/bench.json
	@echo "profiles/ now holds mutex.prof block.prof cpu.prof bench.test bench.json"

# Regression gate: rerun the guarded benchmarks and fail if ns/op
# regressed more than GUARDTOL against the committed baseline text.
# The $$ doubles survive Make so the regex anchors reach go test.
# GUARDTIME is longer than BENCHTIME and GUARDTOL wider than benchstat
# habits because the gate must stay green on noisy single-core CI boxes
# while still catching step-function regressions (observed same-commit
# run-to-run swings on the reference box reach ±45%).
GUARDBENCH ?= BenchmarkQueryConcurrent/scan$$/clients=16$$/workers=1$$|BenchmarkChunkScan|BenchmarkHashJoinPartitioned|BenchmarkGroupBy|BenchmarkOrderByTopK|BenchmarkJoinSpill|BenchmarkQueryDuringLoad
GUARDBASE  ?= BENCH_E19_after.txt
GUARDTIME  ?= 10x
GUARDTOL   ?= 0.50

bench-guard:
	$(GO) run ./cmd/benchjson -bench '$(GUARDBENCH)' -benchtime $(GUARDTIME) \
		-guard $(GUARDBASE) -tolerance $(GUARDTOL) > /dev/null

# Compare two raw benchmark text files (the .txt twins bench-json
# leaves next to the JSON) with benchstat, if installed.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "benchstat not installed; compare $(OLD) and $(NEW) by hand"; \
		echo "(get it with: go install golang.org/x/perf/cmd/benchstat@latest)"; \
		exit 1; }
	benchstat $(OLD) $(NEW)

# ---- server ----

SERVE_DB    ?= serve.db
SERVE_HTTP  ?= 127.0.0.1:8080
SERVE_LINE  ?= 127.0.0.1:7979
SERVE_DATA  ?= data

# Generate demo data (once) and serve it: HTTP on $(SERVE_HTTP), line
# protocol on $(SERVE_LINE). Attach with: xomatiq -connect $(SERVE_LINE)
serve:
	@test -f $(SERVE_DATA)/enzyme.dat || $(GO) run ./cmd/genload -out $(SERVE_DATA) -enzyme 500 -embl 0 -sprot 0
	$(GO) run ./cmd/xomatiqd -db $(SERVE_DB) -http $(SERVE_HTTP) -line $(SERVE_LINE) \
		-preload hlx_enzyme.DEFAULT=enzyme:$(SERVE_DATA)/enzyme.dat

# Concurrent-clients load test under the race detector: N HTTP clients
# mixing queries and ingest, results byte-checked against the embedded
# engine, plus shedding and shutdown-drain coverage.
loadtest:
	$(GO) test -race -count=1 -v -run 'TestConcurrentClients|TestHTTPInflightShedding|TestLineSessionShedding|TestShutdownDrains' ./internal/server/

# End-to-end HTTP query latency: start a throwaway preloaded server on
# a scratch port, ramp 1/4/16 clients with benchjson -server, archive
# the result as the BENCH_SRV baseline, and shut the server down.
BENCHSRV_HTTP ?= 127.0.0.1:18080
BENCHSRV_OUT  ?= BENCH_SRV_$(shell date +%F)

bench-server:
	@test -f $(SERVE_DATA)/enzyme.dat || $(GO) run ./cmd/genload -out $(SERVE_DATA) -enzyme 500 -embl 0 -sprot 0
	@rm -rf benchsrv.tmp && mkdir -p benchsrv.tmp
	$(GO) build -o benchsrv.tmp/xomatiqd ./cmd/xomatiqd
	$(GO) build -o benchsrv.tmp/benchjson ./cmd/benchjson
	@benchsrv.tmp/xomatiqd -db benchsrv.tmp/bench.db -http $(BENCHSRV_HTTP) -line "" \
		-preload hlx_enzyme.DEFAULT=enzyme:$(SERVE_DATA)/enzyme.dat & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; \
	for i in $$(seq 1 50); do \
		benchsrv.tmp/benchjson -server http://$(BENCHSRV_HTTP) -clients 1 -requests 1 >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	benchsrv.tmp/benchjson -server http://$(BENCHSRV_HTTP) \
		2> $(BENCHSRV_OUT).txt > $(BENCHSRV_OUT).json; \
	status=$$?; kill $$pid 2>/dev/null; trap - EXIT; \
	cat $(BENCHSRV_OUT).txt; \
	echo "wrote $(BENCHSRV_OUT).json (raw text in $(BENCHSRV_OUT).txt)"; \
	exit $$status

check: vet build test race

# Fuzz each parser target for $(FUZZTIME); crashers persist under the
# package's testdata/fuzz/ directory and become regression seeds.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xq/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd/
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmldoc/

# Crash-point enumeration and fault-injection sweeps: every counted disk
# op is a crash or fault site; recovery must land on a committed boundary.
crash:
	$(GO) test -v -run 'Crash|FaultSweep' ./internal/sql/ ./internal/core/
