GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sql/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: vet build test race
