package xomatiq_test

import (
	"strings"
	"testing"

	"xomatiq/internal/benchutil"
	"xomatiq/internal/core"
)

// TestQuerySuiteWorkerDeterminism runs the E-series query suite with
// QueryWorkers=1 and QueryWorkers=4 and requires the full result sets
// to be byte-identical. The no-index mode forces every query through
// the sequential-scan path, where the parallel scan-filter operator
// actually engages at workers=4.
func TestQuerySuiteWorkerDeterminism(t *testing.T) {
	f, err := benchutil.BuildFlats(120, 150, 150, benchOpts)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"indexed", func(c *core.Config) {}},
		{"no-indexes", func(c *core.Config) {
			c.WithIndexes = false
			c.UseKeywordIndex = false
		}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			open := func(workers int) *core.Engine {
				eng, err := benchutil.Warehouse(t.TempDir(), f, func(c *core.Config) {
					m.mod(c)
					c.QueryWorkers = workers
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { eng.Close() })
				return eng
			}
			serial, parallel := open(1), open(4)
			for _, q := range benchutil.QuerySuite {
				want := renderResult(t, serial, q.Query)
				got := renderResult(t, parallel, q.Query)
				if want != got {
					t.Errorf("%s: workers=4 diverges from workers=1\nserial:\n%s\nparallel:\n%s",
						q.Name, want, got)
				}
			}
		})
	}
}

func renderResult(t *testing.T, eng *core.Engine, query string) string {
	t.Helper()
	res, err := eng.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		sb.WriteString(strings.Join(row, "|"))
		sb.WriteByte('\n')
	}
	return sb.String()
}
