// Command datahound drives the Data Hounds pipeline from the shell:
// harness a flat file into a warehouse (fetch -> XML transform -> DTD
// validate -> shred), or apply an incremental update.
//
//	datahound -db warehouse.db -name hlx_enzyme.DEFAULT -format enzyme -file data/enzyme.dat
//	datahound -db warehouse.db -name hlx_enzyme.DEFAULT -format enzyme -file data/enzyme_v2.dat -update
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
)

func main() {
	dbPath := flag.String("db", "warehouse.db", "warehouse database file")
	name := flag.String("name", "", "warehouse database name (e.g. hlx_enzyme.DEFAULT)")
	format := flag.String("format", "", "source format: enzyme | embl | sprot")
	file := flag.String("file", "", "flat file to harness")
	update := flag.Bool("update", false, "apply as incremental update instead of full load")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shredding goroutines for the ingest pipeline")
	flag.Parse()

	if *name == "" || *format == "" || *file == "" {
		log.Fatal("datahound: -name, -format and -file are required")
	}
	tr, ok := hounds.Registry[*format]
	if !ok {
		log.Fatalf("datahound: unknown format %q (want enzyme, embl or sprot)", *format)
	}
	cfg := core.NewConfig(*dbPath)
	cfg.LoadWorkers = *workers
	eng, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if eng.Recovered() {
		fmt.Println("warehouse recovered from WAL after unclean shutdown")
	}
	eng.Bus().Subscribe(func(t hounds.Trigger) {
		c := t.Change
		fmt.Printf("trigger: %s +%d ~%d -%d\n", c.DB, len(c.Added), len(c.Modified), len(c.Removed))
	})

	if err := eng.RegisterSource(*name, hounds.FileSource{Path: *file}, tr); err != nil {
		log.Fatal(err)
	}
	if *update {
		cs, err := eng.Update(*name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update applied: added=%d modified=%d removed=%d\n",
			len(cs.Added), len(cs.Modified), len(cs.Removed))
		if snap, err := eng.Snapshot(); err == nil {
			fmt.Println(snap.LastLoad.Summary())
		}
		return
	}
	n, err := eng.Harness(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harnessed %d entries into %s\n", n, *name)
	if snap, err := eng.Snapshot(); err == nil {
		fmt.Println(snap.LastLoad.Summary())
	}
}
