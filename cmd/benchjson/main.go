// Command benchjson converts `go test -bench -benchmem` text output
// into a JSON array of benchmark records, one per result line:
//
//	go test -run xxx -bench . -benchmem . | benchjson > BENCH_$(date +%F).json
//
// It can also drive the benchmark run itself, which is how profile
// capture is wired in:
//
//	benchjson -bench BenchmarkQueryConcurrent -profiledir profiles > BENCH.json
//
// runs `go test -bench ... -benchmem` with mutex, block, and CPU
// profiling enabled, writes the .prof artifacts (plus the test binary
// pprof needs to read them) under -profiledir, and emits the same JSON
// on stdout.
//
// Each record carries the benchmark name (including sub-benchmark
// path), iterations, ns/op, B/op and allocs/op when -benchmem was set,
// and any custom b.ReportMetric units (qps, rows, wal-bytes, ...) in a
// "metrics" map. Lines that are not benchmark results (package headers,
// PASS, ok) are skipped, so the raw `go test` stream pipes straight in.
//
// With -guard <baseline.txt> the run doubles as a regression gate: each
// result is compared by name (GOMAXPROCS suffix stripped) against the
// baseline's ns/op, and any benchmark slower by more than -tolerance
// (default 0.10 = 10%) fails the run with exit status 1. `make
// bench-guard` wires this against the committed baseline.
//
// With -server <base-url> it benchmarks a running xomatiqd end to end
// instead of running go test: ramps of concurrent HTTP clients POST
// the -query to /v1/query and the wall-clock per-request latency comes
// out in the same go-bench line format —
//
//	BenchmarkServerHTTPQuery/clients=4   200   812345 ns/op   4924 qps
//
// — so the JSON conversion and -guard gating work unchanged. `make
// bench-server` starts a preloaded server, runs this, and records the
// BENCH_SRV baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// record is one benchmark result row.
type record struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (qps, rows, ...),
	// keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	bench := flag.String("bench", "", "run `go test -bench <regex>` instead of reading stdin")
	benchtime := flag.String("benchtime", "3x", "benchtime for -bench runs (fixed counts compare across commits)")
	pkg := flag.String("pkg", ".", "package to benchmark in -bench runs")
	profileDir := flag.String("profiledir", "", "also capture mutex/block/cpu profiles into this directory (-bench runs only)")
	guard := flag.String("guard", "", "baseline `go test -bench` text file; fail on ns/op regressions against it")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression for -guard (0.10 = 10%)")
	server := flag.String("server", "", "benchmark a running xomatiqd at this base URL (e.g. http://127.0.0.1:8080) instead of reading stdin")
	query := flag.String("query", defaultServerQuery, "FLWR query for -server runs")
	clients := flag.String("clients", "1,4,16", "comma-separated concurrent client counts for -server runs")
	requests := flag.Int("requests", 50, "requests per client per -server measurement")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *bench != "" {
		out, err := runBench(*bench, *benchtime, *pkg, *profileDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		in = strings.NewReader(out)
	}
	if *server != "" {
		out, err := runServerBench(*server, *query, *clients, *requests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		in = strings.NewReader(out)
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []record
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *guard != "" {
		if err := guardAgainst(*guard, recs, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// guardAgainst compares the run's ns/op against a committed baseline
// (raw `go test -bench` text). Names are matched with the trailing
// -GOMAXPROCS suffix stripped, so baselines captured on a different
// core count still compare. Benchmarks absent from the baseline are
// ignored; any present benchmark slower by more than tolerance fails.
func guardAgainst(path string, recs []record, tolerance float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			base[stripProcs(r.Name)] = r.NsOp
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("guard baseline %s has no benchmark lines", path)
	}
	failed := 0
	for _, r := range recs {
		want, ok := base[stripProcs(r.Name)]
		if !ok || want <= 0 {
			continue
		}
		delta := (r.NsOp - want) / want
		status := "ok"
		if delta > tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "guard %s: %s %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)\n",
			status, stripProcs(r.Name), r.NsOp, want, delta*100, tolerance*100)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", failed, tolerance*100, path)
	}
	return nil
}

// stripProcs removes the trailing -<GOMAXPROCS> go test appends to
// benchmark names (BenchmarkFoo/case=1-8 -> BenchmarkFoo/case=1).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// defaultServerQuery matches the enzyme corpus `make bench-server`
// preloads (any selective point lookup works; override with -query).
const defaultServerQuery = `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme WHERE $a//enzyme_id = "1.14.17.3" RETURN $a//enzyme_description`

// runServerBench drives a running xomatiqd over HTTP: for each client
// count, `clients` goroutines each POST `requests` queries to
// /v1/query, and the aggregate wall time becomes one go-bench-style
// result line (ns per request plus a qps metric). The lines mirror to
// stderr like runBench's raw text does.
func runServerBench(base, query, clientSpec string, requests int) (string, error) {
	base = strings.TrimSuffix(base, "/")
	body, err := json.Marshal(map[string]string{"query": query})
	if err != nil {
		return "", err
	}
	post := func() error {
		resp, err := http.Post(base+"/v1/query", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(out)))
		}
		return nil
	}
	// One warm-up request also validates the query and the connection.
	if err := post(); err != nil {
		return "", fmt.Errorf("server warm-up query failed: %w", err)
	}
	var sb strings.Builder
	for _, cs := range strings.Split(clientSpec, ",") {
		clients, err := strconv.Atoi(strings.TrimSpace(cs))
		if err != nil || clients <= 0 {
			return "", fmt.Errorf("bad -clients element %q", cs)
		}
		total := clients * requests
		var wg sync.WaitGroup
		var failures atomic.Int64
		var errOnce sync.Once
		var firstErr error
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < requests; i++ {
					if err := post(); err != nil {
						failures.Add(1)
						errOnce.Do(func() { firstErr = err })
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if n := failures.Load(); n > 0 {
			return "", fmt.Errorf("clients=%d: %d/%d requests failed (first: %v)",
				clients, n, total, firstErr)
		}
		line := fmt.Sprintf("BenchmarkServerHTTPQuery/clients=%d \t %d \t %d ns/op \t %.1f qps\n",
			clients, total, elapsed.Nanoseconds()/int64(total),
			float64(total)/elapsed.Seconds())
		sb.WriteString(line)
		fmt.Fprint(os.Stderr, line)
	}
	return sb.String(), nil
}

// runBench executes the benchmark run, mirroring its raw text to stderr
// so the usual console view survives the JSON pipe. When profileDir is
// set, mutex/block/CPU profiles and the test binary land there.
func runBench(pattern, benchtime, pkg, profileDir string) (string, error) {
	args := []string{"test", "-run", "xxx", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem"}
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return "", err
		}
		args = append(args,
			"-mutexprofile", filepath.Join(profileDir, "mutex.prof"),
			"-blockprofile", filepath.Join(profileDir, "block.prof"),
			"-cpuprofile", filepath.Join(profileDir, "cpu.prof"),
			"-o", filepath.Join(profileDir, "bench.test"),
		)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return buf.String(), nil
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkE3PipelineLoad/entries=500/workers=1-8   8   181098273 ns/op   53167216 B/op   348595 allocs/op
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Iters: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			// Custom b.ReportMetric units: qps, rows, wal-bytes, ...
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	if r.NsOp == 0 {
		return record{}, false
	}
	return r, true
}
