// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into a JSON array of benchmark records, one per
// result line:
//
//	go test -run xxx -bench . -benchmem . | benchjson > BENCH_$(date +%F).json
//
// Each record carries the benchmark name (including sub-benchmark
// path), iterations, ns/op and — when -benchmem was set — B/op and
// allocs/op. Lines that are not benchmark results (package headers,
// PASS, ok) are skipped, so the raw `go test` stream pipes straight in.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result row.
type record struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []record
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkE3PipelineLoad/entries=500/workers=1-8   8   181098273 ns/op   53167216 B/op   348595 allocs/op
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Iters: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	if r.NsOp == 0 {
		return record{}, false
	}
	return r, true
}
