// Command benchjson converts `go test -bench -benchmem` text output
// into a JSON array of benchmark records, one per result line:
//
//	go test -run xxx -bench . -benchmem . | benchjson > BENCH_$(date +%F).json
//
// It can also drive the benchmark run itself, which is how profile
// capture is wired in:
//
//	benchjson -bench BenchmarkQueryConcurrent -profiledir profiles > BENCH.json
//
// runs `go test -bench ... -benchmem` with mutex, block, and CPU
// profiling enabled, writes the .prof artifacts (plus the test binary
// pprof needs to read them) under -profiledir, and emits the same JSON
// on stdout.
//
// Each record carries the benchmark name (including sub-benchmark
// path), iterations, ns/op, B/op and allocs/op when -benchmem was set,
// and any custom b.ReportMetric units (qps, rows, wal-bytes, ...) in a
// "metrics" map. Lines that are not benchmark results (package headers,
// PASS, ok) are skipped, so the raw `go test` stream pipes straight in.
//
// With -guard <baseline.txt> the run doubles as a regression gate: each
// result is compared by name (GOMAXPROCS suffix stripped) against the
// baseline's ns/op, and any benchmark slower by more than -tolerance
// (default 0.10 = 10%) fails the run with exit status 1. `make
// bench-guard` wires this against the committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// record is one benchmark result row.
type record struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (qps, rows, ...),
	// keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	bench := flag.String("bench", "", "run `go test -bench <regex>` instead of reading stdin")
	benchtime := flag.String("benchtime", "3x", "benchtime for -bench runs (fixed counts compare across commits)")
	pkg := flag.String("pkg", ".", "package to benchmark in -bench runs")
	profileDir := flag.String("profiledir", "", "also capture mutex/block/cpu profiles into this directory (-bench runs only)")
	guard := flag.String("guard", "", "baseline `go test -bench` text file; fail on ns/op regressions against it")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression for -guard (0.10 = 10%)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *bench != "" {
		out, err := runBench(*bench, *benchtime, *pkg, *profileDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		in = strings.NewReader(out)
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []record
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *guard != "" {
		if err := guardAgainst(*guard, recs, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// guardAgainst compares the run's ns/op against a committed baseline
// (raw `go test -bench` text). Names are matched with the trailing
// -GOMAXPROCS suffix stripped, so baselines captured on a different
// core count still compare. Benchmarks absent from the baseline are
// ignored; any present benchmark slower by more than tolerance fails.
func guardAgainst(path string, recs []record, tolerance float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			base[stripProcs(r.Name)] = r.NsOp
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("guard baseline %s has no benchmark lines", path)
	}
	failed := 0
	for _, r := range recs {
		want, ok := base[stripProcs(r.Name)]
		if !ok || want <= 0 {
			continue
		}
		delta := (r.NsOp - want) / want
		status := "ok"
		if delta > tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "guard %s: %s %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)\n",
			status, stripProcs(r.Name), r.NsOp, want, delta*100, tolerance*100)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", failed, tolerance*100, path)
	}
	return nil
}

// stripProcs removes the trailing -<GOMAXPROCS> go test appends to
// benchmark names (BenchmarkFoo/case=1-8 -> BenchmarkFoo/case=1).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// runBench executes the benchmark run, mirroring its raw text to stderr
// so the usual console view survives the JSON pipe. When profileDir is
// set, mutex/block/CPU profiles and the test binary land there.
func runBench(pattern, benchtime, pkg, profileDir string) (string, error) {
	args := []string{"test", "-run", "xxx", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem"}
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return "", err
		}
		args = append(args,
			"-mutexprofile", filepath.Join(profileDir, "mutex.prof"),
			"-blockprofile", filepath.Join(profileDir, "block.prof"),
			"-cpuprofile", filepath.Join(profileDir, "cpu.prof"),
			"-o", filepath.Join(profileDir, "bench.test"),
		)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return buf.String(), nil
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkE3PipelineLoad/entries=500/workers=1-8   8   181098273 ns/op   53167216 B/op   348595 allocs/op
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Iters: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			// Custom b.ReportMetric units: qps, rows, wal-bytes, ...
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	if r.NsOp == 0 {
		return record{}, false
	}
	return r, true
}
