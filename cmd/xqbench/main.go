// Command xqbench regenerates the experiment tables of EXPERIMENTS.md:
// one section per experiment id in DESIGN.md §4, printing the measured
// series in a paper-style table. For statistically tighter numbers use
// the Go benchmarks (go test -bench=. -benchmem); xqbench favours a
// quick, readable end-to-end run.
//
//	xqbench                  run every experiment
//	xqbench -exp E4,E7       run selected experiments
//	xqbench -scale 2         double the corpus sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"xomatiq/internal/benchutil"
	"xomatiq/internal/bio"
	"xomatiq/internal/core"
	"xomatiq/internal/nativexml"
	"xomatiq/internal/srs"
	"xomatiq/internal/xq"
)

var (
	scale   = flag.Int("scale", 1, "corpus size multiplier")
	expFlag = flag.String("exp", "", "comma-separated experiment ids (default all)")
)

var benchOpts = bio.GenOptions{Seed: 42, Cdc6Rate: 0.02, ECLinkRate: 0.3}

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		if e = strings.TrimSpace(strings.ToUpper(e)); e != "" {
			want[e] = true
		}
	}
	run := func(id, title string, fn func()) {
		if len(want) > 0 && !want[id] {
			return
		}
		fmt.Printf("\n=== %s: %s ===\n", id, title)
		fn()
	}
	run("E3", "Data Hounds pipeline load throughput", e3)
	run("E4", "Fig. 8 keyword query: inverted index ablation", e4)
	run("E5", "Fig. 9 sub-tree query scaling", e5)
	run("E6", "Fig. 11 join query scaling", e6)
	run("E7", "query time vs XML reconstruction time", e7)
	run("E8", "secondary index ablation over the query suite", e8)
	run("E9", "XomatiQ vs SRS-style field lookups", e9)
	run("E10", "relational engine vs native XML processor", e10)
	run("E11", "document-order operators (BEFORE/AFTER)", e11)
	run("E12", "incremental update vs full re-harness", e12)
	run("E13", "numeric values table vs coerced string scan", e13)
	run("E15", "sequence/non-sequence split: motif search", e15)
	run("E16", "plan cache: hot-query latency and invalidation", e16)
}

// med runs fn iters times and returns the median duration.
func med(iters int, fn func()) time.Duration {
	if iters < 1 {
		iters = 1
	}
	times := make([]time.Duration, iters)
	for i := range times {
		t0 := time.Now()
		fn()
		times[i] = time.Since(t0)
	}
	for i := range times {
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	return times[len(times)/2]
}

func mustFlats(nEnz, nEMBL, nSProt int) *benchutil.Flats {
	f, err := benchutil.BuildFlats(nEnz**scale, nEMBL**scale, nSProt**scale, benchOpts)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func mustWarehouse(f *benchutil.Flats, mod func(*core.Config)) (*core.Engine, func()) {
	dir, err := os.MkdirTemp("", "xqbench")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := benchutil.Warehouse(dir, f, mod)
	if err != nil {
		log.Fatal(err)
	}
	return eng, func() { eng.Close(); os.RemoveAll(dir) }
}

func mustQuery(eng *core.Engine, q string) *core.Result {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func e3() {
	fmt.Printf("%-10s %12s %14s\n", "entries", "load time", "entries/sec")
	for _, n := range []int{100, 500, 1000} {
		f := mustFlats(n, 0, 0)
		d := med(3, func() {
			eng, cleanup := mustWarehouse(&benchutil.Flats{Enzyme: f.Enzyme}, nil)
			_ = eng
			cleanup()
		})
		fmt.Printf("%-10d %12v %14.0f\n", n**scale+1, d.Round(time.Millisecond),
			float64(n**scale+1)/d.Seconds())
	}
}

func e4() {
	fmt.Printf("%-14s %-10s %12s %8s\n", "corpus", "kw index", "latency", "rows")
	for _, n := range []int{200, 1000} {
		f := mustFlats(10, n, n)
		for _, useIndex := range []bool{true, false} {
			eng, cleanup := mustWarehouse(f, func(c *core.Config) { c.UseKeywordIndex = useIndex })
			rows := len(mustQuery(eng, benchutil.Figure8Query).Rows)
			d := med(5, func() { mustQuery(eng, benchutil.Figure8Query) })
			fmt.Printf("%-14s %-10v %12v %8d\n",
				fmt.Sprintf("%dx2", n**scale), useIndex, d.Round(time.Microsecond), rows)
			cleanup()
		}
	}
}

func e5() {
	fmt.Printf("%-10s %12s %8s\n", "entries", "latency", "rows")
	for _, n := range []int{200, 1000, 3000} {
		f := mustFlats(n, 0, 0)
		eng, cleanup := mustWarehouse(f, nil)
		rows := len(mustQuery(eng, benchutil.Figure9Query).Rows)
		d := med(5, func() { mustQuery(eng, benchutil.Figure9Query) })
		fmt.Printf("%-10d %12v %8d\n", n**scale+1, d.Round(time.Microsecond), rows)
		cleanup()
	}
}

func e6() {
	fmt.Printf("%-18s %12s %8s\n", "corpus", "latency", "rows")
	for _, size := range []struct{ enz, embl int }{{100, 300}, {300, 1500}} {
		f := mustFlats(size.enz, size.embl, 0)
		eng, cleanup := mustWarehouse(f, nil)
		rows := len(mustQuery(eng, benchutil.Figure11Query).Rows)
		d := med(5, func() { mustQuery(eng, benchutil.Figure11Query) })
		fmt.Printf("%-18s %12v %8d\n",
			fmt.Sprintf("enz=%d embl=%d", size.enz**scale, size.embl**scale),
			d.Round(time.Microsecond), rows)
		cleanup()
	}
}

func e7() {
	f := mustFlats(500, 0, 0)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()
	qd := med(5, func() { mustQuery(eng, benchutil.Figure9Query) })
	res := mustQuery(eng, benchutil.Figure9Query)
	hits := map[string]bool{}
	for _, r := range res.Rows {
		hits[r[0]] = true
	}
	rd := med(5, func() {
		for h := range hits {
			if _, err := eng.Document("hlx_enzyme.DEFAULT", h); err != nil {
				log.Fatal(err)
			}
		}
	})
	n, _ := eng.DocCount("hlx_enzyme.DEFAULT")
	names, err := eng.DB().Query(`SELECT name FROM docs WHERE db = 'hlx_enzyme.DEFAULT'`)
	if err != nil {
		log.Fatal(err)
	}
	ad := med(2, func() {
		for _, r := range names.Rows {
			if _, err := eng.Document("hlx_enzyme.DEFAULT", r[0].Text()); err != nil {
				log.Fatal(err)
			}
		}
	})
	fmt.Printf("%-32s %12v\n", "Fig. 9 query (SQL only)", qd.Round(time.Microsecond))
	fmt.Printf("%-32s %12v  (%d docs)\n", "reconstruct query hits", rd.Round(time.Microsecond), len(hits))
	fmt.Printf("%-32s %12v  (%d docs)\n", "reconstruct whole database", ad.Round(time.Millisecond), n)
	fmt.Printf("reconstruction/query ratio (hits): %.1fx\n", float64(rd)/float64(qd))
}

func e8() {
	f := mustFlats(300, 500, 500)
	fmt.Printf("%-16s %16s %16s %10s\n", "query", "all indexes", "no indexes", "slowdown")
	engIdx, cleanIdx := mustWarehouse(f, nil)
	engNo, cleanNo := mustWarehouse(f, func(c *core.Config) {
		c.WithIndexes = false
		c.UseKeywordIndex = false
	})
	defer cleanIdx()
	defer cleanNo()
	for _, q := range benchutil.QuerySuite {
		di := med(3, func() { mustQuery(engIdx, q.Query) })
		dn := med(3, func() { mustQuery(engNo, q.Query) })
		fmt.Printf("%-16s %16v %16v %9.1fx\n", q.Name,
			di.Round(time.Microsecond), dn.Round(time.Microsecond),
			float64(dn)/float64(di))
	}
}

func e9() {
	f := mustFlats(1000, 0, 0)
	entries, err := bio.ParseEnzyme(strings.NewReader(f.Enzyme))
	if err != nil {
		log.Fatal(err)
	}
	sys := srs.New()
	anyEntries := make([]any, len(entries))
	for i, e := range entries {
		anyEntries[i] = e
	}
	sys.AddDatabank("enzyme", anyEntries, []srs.FieldIndex{
		{Name: "id", Extract: func(e any) []string { return []string{e.(*bio.EnzymeEntry).ID} }},
		{Name: "cofactor", Extract: func(e any) []string { return e.(*bio.EnzymeEntry).Cofactors }},
	}, nil)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()

	ds := med(20, func() {
		if _, err := sys.Lookup("enzyme", "cofactor", "Copper"); err != nil {
			log.Fatal(err)
		}
	})
	q := `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//cofactor = "Copper" RETURN $a//enzyme_id`
	dx := med(5, func() { mustQuery(eng, q) })
	fmt.Printf("%-38s %12s\n", "query shape", "latency")
	fmt.Printf("%-38s %12v\n", "SRS indexed field lookup", ds.Round(time.Microsecond))
	fmt.Printf("%-38s %12v\n", "XomatiQ same lookup (via values idx)", dx.Round(time.Microsecond))
	fmt.Println("\nexpressiveness (can the system answer it?):")
	fmt.Printf("%-38s %8s %8s\n", "query", "SRS", "XomatiQ")
	matrix := []struct {
		name                          string
		fieldIdx, anyLvl, join, theta bool
	}{
		{"indexed field lookup", true, false, false, false},
		{"unindexed field search", false, false, false, false},
		{"any-level element (Fig. 9)", true, true, false, false},
		{"ad-hoc join (Fig. 11)", true, false, true, false},
		{"numeric range (theta)", true, false, false, true},
	}
	for _, m := range matrix {
		fmt.Printf("%-38s %8v %8v\n", m.name,
			sys.CanAnswer("enzyme", m.fieldIdx, m.anyLvl, m.join, m.theta), true)
	}
}

func e10() {
	fmt.Printf("%-10s %16s %16s %14s\n", "entries", "relational", "native DOM", "corpus bytes")
	for _, n := range []int{200, 1000, 3000} {
		f := mustFlats(n, 0, 0)
		eng, cleanup := mustWarehouse(f, nil)
		corpus, err := benchutil.Corpus(f)
		if err != nil {
			log.Fatal(err)
		}
		q := xq.MustParse(benchutil.Figure9Query)
		dr := med(5, func() { mustQuery(eng, benchutil.Figure9Query) })
		dn := med(5, func() {
			if _, err := nativexml.Eval(corpus, q); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-10d %16v %16v %14d\n", n**scale+1,
			dr.Round(time.Microsecond), dn.Round(time.Microsecond),
			benchutil.CorpusBytes(corpus))
		cleanup()
	}
}

func e11() {
	f := mustFlats(500, 0, 0)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()
	q := `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//alternate_name BEFORE $a//cofactor
RETURN $a//enzyme_id`
	rows := len(mustQuery(eng, q).Rows)
	d := med(3, func() { mustQuery(eng, q) })
	fmt.Printf("%-40s %12v %6d rows\n", "BEFORE comparison over 500 entries", d.Round(time.Microsecond), rows)
}

func e13() {
	f := mustFlats(10, 1000, 0)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()
	dn := med(10, func() {
		if _, err := eng.DB().Query(
			`SELECT COUNT(*) FROM values_num WHERE db = 'hlx_embl.inv' AND val > 100 AND val < 300`); err != nil {
			log.Fatal(err)
		}
	})
	ds := med(3, func() {
		if _, err := eng.DB().Query(
			`SELECT COUNT(*) FROM values_str WHERE db = 'hlx_embl.inv' AND val > 100 AND val < 300`); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("%-40s %12v\n", "values_num indexed range", dn.Round(time.Microsecond))
	fmt.Printf("%-40s %12v  (%.0fx)\n", "values_str coerced scan", ds.Round(time.Microsecond), float64(ds)/float64(dn))
}

func e15() {
	f := mustFlats(10, 1000, 0)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()
	q := `FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE seqcontains($a//sequence_data, "acgtacgt")
RETURN $a//embl_accession_number`
	rows := len(mustQuery(eng, q).Rows)
	dm := med(3, func() { mustQuery(eng, q) })
	da := med(3, func() {
		if _, err := eng.DB().Query(
			`SELECT COUNT(*) FROM values_str WHERE db = 'hlx_embl.inv' AND CONTAINS(val, 'acgtacgt')`); err != nil {
			log.Fatal(err)
		}
		if _, err := eng.DB().Query(
			`SELECT COUNT(*) FROM seq_data WHERE db = 'hlx_embl.inv' AND CONTAINS(seq, 'acgtacgt')`); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("%-40s %12v %6d rows\n", "motif via seq_data (seqcontains)", dm.Round(time.Microsecond), rows)
	fmt.Printf("%-40s %12v  (no-split counterfactual)\n", "motif over all text", da.Round(time.Microsecond))
}

func e16() {
	f := mustFlats(10, 500, 500)
	engCached, cleanupC := mustWarehouse(f, nil)
	defer cleanupC()
	engCold, cleanupN := mustWarehouse(f, func(c *core.Config) { c.PlanCacheSize = -1 })
	defer cleanupN()
	q := benchutil.Figure9Query
	mustQuery(engCached, q) // warm the cache
	dh := med(9, func() { mustQuery(engCached, q) })
	dm := med(9, func() { mustQuery(engCold, q) })
	fmt.Printf("%-34s %12v\n", "Fig. 9 query, plan cache hit", dh.Round(time.Microsecond))
	fmt.Printf("%-34s %12v\n", "Fig. 9 query, cache disabled", dm.Round(time.Microsecond))
	if snap, err := engCached.Snapshot(); err == nil {
		pc := snap.PlanCache
		fmt.Printf("cache: %d entries, %d hits, %d misses, %d invalidations\n",
			pc.Entries, pc.Hits, pc.Misses, pc.Invalidations)
	}
}

func e12() {
	// Mirrors BenchmarkE12: 500-entry dump, 15-entry delta.
	f := mustFlats(500, 0, 0)
	eng, cleanup := mustWarehouse(f, nil)
	defer cleanup()
	entries, err := bio.ParseEnzyme(strings.NewReader(f.Enzyme))
	if err != nil {
		log.Fatal(err)
	}
	_ = entries
	full := med(3, func() {
		if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("%-34s %12v\n", "full re-harness (500 entries)", full.Round(time.Millisecond))
	fmt.Println("(see BenchmarkE12IncrementalUpdate for the delta path; shape:")
	fmt.Println(" incremental delta cost ~ parse+diff, full reload ~ parse+shred)")
}
