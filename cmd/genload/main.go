// Command genload writes synthetic biological flat files — the stand-ins
// for the 2003 FTP dumps of ENZYME, EMBL and Swiss-Prot (see DESIGN.md).
//
//	genload -out data -enzyme 500 -embl 2000 -sprot 2000 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xomatiq/internal/benchutil"
	"xomatiq/internal/bio"
)

func main() {
	out := flag.String("out", "data", "output directory")
	nEnzyme := flag.Int("enzyme", 500, "ENZYME entries (plus the paper's sample)")
	nEMBL := flag.Int("embl", 1000, "EMBL entries (division INV)")
	nSProt := flag.Int("sprot", 1000, "Swiss-Prot entries")
	seed := flag.Int64("seed", 1, "generator seed")
	cdc6 := flag.Float64("cdc6", 0.02, "fraction of entries mentioning cdc6")
	ecRate := flag.Float64("eclink", 0.3, "fraction of EMBL entries with EC links")
	flag.Parse()

	opts := bio.GenOptions{Seed: *seed, Cdc6Rate: *cdc6, ECLinkRate: *ecRate}
	flats, err := benchutil.BuildFlats(*nEnzyme, *nEMBL, *nSProt, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	files := map[string]string{
		"enzyme.dat":    flats.Enzyme,
		"embl_inv.dat":  flats.EMBL,
		"sprot_all.dat": flats.SProt,
	}
	for name, content := range files {
		if content == "" {
			continue
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}
}
