package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xomatiq/internal/bio"
	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
	"xomatiq/internal/server"
)

// TestRemoteConsoleAttach is the acceptance round trip: the console's
// -connect pipe attaches to a running server's line protocol and
// round-trips a FLWR query, EXPLAIN ANALYZE and \metrics.
func TestRemoteConsoleAttach(t *testing.T) {
	eng, err := core.Open(core.NewConfig(filepath.Join(t.TempDir(), "remote.db")))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	entries := bio.GenEnzymes(20, bio.GenOptions{Seed: 3})
	var flat bytes.Buffer
	if err := bio.WriteEnzyme(&flat, entries); err != nil {
		t.Fatal(err)
	}
	src := hounds.NewSimSource("enzyme", flat.String())
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, hounds.EnzymeTransformer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
		t.Fatal(err)
	}

	srv := server.New(eng, server.Config{LineAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	query := `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme WHERE $a//enzyme_id = "1.14.17.3" RETURN $a//enzyme_description`
	input := query + ";\n" +
		"EXPLAIN ANALYZE " + query + ";\n" +
		"\\metrics\n" +
		"\\quit\n"
	var out bytes.Buffer
	if err := remote(srv.LineAddr(), strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "session ") {
		t.Errorf("banner missing:\n%s", got)
	}
	if !strings.Contains(got, "Peptidylglycine monooxygenase") || !strings.Contains(got, "1 rows, sql mode") {
		t.Errorf("remote query output:\n%s", got)
	}
	if !strings.Contains(got, "actual") {
		t.Errorf("remote EXPLAIN ANALYZE output:\n%s", got)
	}
	if !strings.Contains(got, "query.count") {
		t.Errorf("remote \\metrics output:\n%s", got)
	}
}
