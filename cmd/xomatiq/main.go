// Command xomatiq is the interactive query console — the text-mode
// equivalent of the paper's visual query interface (Figures 7, 10, 12).
// It runs in two modes:
//
//	xomatiq -db warehouse.db          embedded: opens the warehouse in-process
//	xomatiq -connect host:port        remote: attaches to a running xomatiqd
//
// Remote mode speaks the newline-delimited line protocol: the server
// runs the same console REPL on its side of the connection, so the
// full \-command surface (see internal/console) works identically;
// this process is just the terminal.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"xomatiq/internal/console"
	"xomatiq/internal/core"
)

func main() {
	dbPath := flag.String("db", "warehouse.db", "warehouse database file")
	connect := flag.String("connect", "", "attach to a running xomatiqd line-protocol port (host:port) instead of opening -db")
	timeout := flag.Duration("timeout", 0, "per-query timeout (e.g. 5s; 0 = none)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shredding goroutines for \\harness loads")
	queryWorkers := flag.Int("query-workers", runtime.GOMAXPROCS(0), "goroutines per large sequential scan (1 = serial)")
	flag.Parse()

	if *connect != "" {
		if err := remote(*connect, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := core.NewConfig(*dbPath)
	cfg.LoadWorkers = *workers
	cfg.QueryWorkers = *queryWorkers
	eng, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if eng.Recovered() {
		fmt.Println("(warehouse recovered from WAL after unclean shutdown)")
	}
	sess, err := eng.NewSession(nil,
		core.WithDefaultDeadline(*timeout),
		core.WithSessionTag("console"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Println("XomatiQ console — \\dbs lists databases, \\quit exits.")
	console.New(sess).Run(os.Stdin, os.Stdout)
}

// remote attaches stdin/stdout to a xomatiqd line-protocol port. The
// REPL runs server-side; this end is a dumb pipe that exits when
// either direction closes.
func remote(addr string, in io.Reader, out io.Writer) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("connect %s: %w", addr, err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		// Server → terminal. Ends when the server closes (e.g. after
		// \quit or shutdown drain).
		io.Copy(out, conn)
		close(done)
	}()
	go func() {
		// Terminal → server. On local EOF, half-close the write side so
		// the server sees EOF and finishes its REPL cleanly.
		io.Copy(conn, in)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	<-done
	return nil
}
