// Command xomatiq is the interactive query console — the text-mode
// equivalent of the paper's visual query interface (Figures 7, 10, 12).
// It shows warehoused DTD structures, accepts queries in the three modes
// the GUI offers (keyword search, sub-tree search, join queries written
// in full FLWR), and renders results as tables or XML.
//
//	xomatiq -db warehouse.db
//
// Console commands:
//
//	\dbs                     list warehoused databases
//	\dtd <db>                show a database's DTD structure tree
//	\doc <db> <entry>        reconstruct one entry as XML
//	\kw <db> [db...] : <kw>  keyword search mode (Fig. 8)
//	\harness <db> <format> <file>  bulk-load a flat file, print throughput
//	\stats                   physical and warehouse statistics
//	\metrics                 flat dump of every engine counter
//	\mode table|xml          result display mode
//	\quit                    exit
//
// Anything else is a XomatiQ FLWR query; end it with a line containing
// only ";". A query prefixed with EXPLAIN ANALYZE is executed and its
// operator tree printed with actual row counts and timings.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
	"xomatiq/internal/obs"
)

// queryTimeout bounds each query's execution; 0 means no limit.
var queryTimeout time.Duration

func main() {
	dbPath := flag.String("db", "warehouse.db", "warehouse database file")
	flag.DurationVar(&queryTimeout, "timeout", 0, "per-query timeout (e.g. 5s; 0 = none)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shredding goroutines for \\harness loads")
	queryWorkers := flag.Int("query-workers", runtime.GOMAXPROCS(0), "goroutines per large sequential scan (1 = serial)")
	flag.Parse()

	cfg := core.NewConfig(*dbPath)
	cfg.LoadWorkers = *workers
	cfg.QueryWorkers = *queryWorkers
	eng, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if eng.Recovered() {
		fmt.Println("(warehouse recovered from WAL after unclean shutdown)")
	}
	fmt.Println("XomatiQ console — \\dbs lists databases, \\quit exits.")
	repl(eng, os.Stdin, os.Stdout)
}

func repl(eng *core.Engine, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	mode := "table"
	// registered tracks db -> flat file bound by \harness this session;
	// core sources can't be rebound, so re-harnessing needs the same file.
	registered := map[string]string{}
	var queryBuf []string
	prompt := func() {
		if len(queryBuf) > 0 {
			fmt.Fprint(out, "  ... ")
		} else {
			fmt.Fprint(out, "xomatiq> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case len(queryBuf) == 0 && strings.HasPrefix(trimmed, "\\"):
			if !command(eng, out, trimmed, &mode, registered) {
				return
			}
		case trimmed == ";":
			query := strings.Join(queryBuf, "\n")
			queryBuf = nil
			runQuery(eng, out, query, mode)
		case trimmed == "" && len(queryBuf) == 0:
			// skip blank lines between queries
		default:
			queryBuf = append(queryBuf, line)
			// Single-line queries ending in ';' run immediately.
			if strings.HasSuffix(trimmed, ";") {
				query := strings.TrimSuffix(strings.Join(queryBuf, "\n"), ";")
				queryBuf = nil
				runQuery(eng, out, query, mode)
			}
		}
		prompt()
	}
}

// command handles a backslash command; returns false to exit.
func command(eng *core.Engine, out io.Writer, line string, mode *string, registered map[string]string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\dbs":
		for _, db := range eng.Databases() {
			n, _ := eng.DocCount(db)
			fmt.Fprintf(out, "  %-24s %6d entries\n", db, n)
		}
	case "\\dtd":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\dtd <db>")
			break
		}
		tree, err := eng.DTDTree(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprint(out, tree)
	case "\\doc":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: \\doc <db> <entry>")
			break
		}
		xml, err := eng.Document(fields[1], fields[2])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintln(out, xml)
	case "\\kw":
		runKeywordMode(eng, out, fields[1:], *mode)
	case "\\harness":
		runHarness(eng, out, fields[1:], registered)
	case "\\stats":
		snap, err := eng.Snapshot()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		phys := snap.DB
		fmt.Fprintf(out, "file: %d pages, wal: %d bytes, dirty: %d pages\n",
			phys.FilePages, phys.WALBytes, phys.DirtyPages)
		fmt.Fprintf(out, "buffer pool: %d shards, %d hits, %d misses\n",
			snap.Pool.Shards, snap.Pool.Hits, snap.Pool.Misses)
		for _, w := range snap.Warehouses {
			fmt.Fprintf(out, "  %-24s %6d docs %5d paths\n", w.DB, w.Docs, w.Paths)
		}
		for _, t := range phys.Tables {
			fmt.Fprintf(out, "  table %-12s %8d rows  indexes: %s\n",
				t.Name, t.Rows, strings.Join(t.Indexes, ", "))
		}
		pc := snap.PlanCache
		fmt.Fprintf(out, "plan cache: %d entries, %d hits, %d misses, %d invalidations\n",
			pc.Entries, pc.Hits, pc.Misses, pc.Invalidations)
	case "\\metrics":
		snap, err := eng.Snapshot()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprint(out, obs.FormatMetrics(snap.Metrics()))
	case "\\plan":
		query := strings.TrimSpace(strings.TrimPrefix(line, "\\plan"))
		if query == "" {
			fmt.Fprintln(out, "usage: \\plan <query on one line>")
			break
		}
		plan, err := eng.Explain(query)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintln(out, plan)
	case "\\mode":
		if len(fields) == 2 && (fields[1] == "table" || fields[1] == "xml") {
			*mode = fields[1]
			fmt.Fprintln(out, "display mode:", *mode)
		} else {
			fmt.Fprintln(out, "usage: \\mode table|xml")
		}
	default:
		fmt.Fprintln(out, "unknown command; try \\dbs \\dtd \\doc \\kw \\harness \\stats \\metrics \\plan \\mode \\quit")
	}
	return true
}

// runHarness bulk-loads a flat file into a warehouse database through
// the parallel ingest pipeline and prints the throughput of the load.
func runHarness(eng *core.Engine, out io.Writer, args []string, registered map[string]string) {
	if len(args) != 3 {
		fmt.Fprintln(out, "usage: \\harness <db> <format> <file>   (formats: enzyme, embl, sprot)")
		return
	}
	db, format, file := args[0], args[1], args[2]
	tr, ok := hounds.Registry[format]
	if !ok {
		fmt.Fprintf(out, "unknown format %q (want enzyme, embl or sprot)\n", format)
		return
	}
	if prev, dup := registered[db]; dup {
		// The source is already bound; FileSource re-reads its path on
		// every fetch, so the same file simply re-harnesses.
		if prev != file {
			fmt.Fprintf(out, "error: %s is bound to %s for this session; restart to load a different file\n", db, prev)
			return
		}
	} else {
		if err := eng.RegisterSource(db, hounds.FileSource{Path: file}, tr); err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		registered[db] = file
	}
	n, err := eng.Harness(db)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "harnessed %d entries into %s\n", n, db)
	if snap, err := eng.Snapshot(); err == nil {
		fmt.Fprintln(out, snap.LastLoad.Summary())
	}
}

// runKeywordMode builds the Fig. 8-style keyword query from "\kw db1 db2
// : keyword" and runs it.
func runKeywordMode(eng *core.Engine, out io.Writer, args []string, mode string) {
	sep := -1
	for i, a := range args {
		if a == ":" {
			sep = i
			break
		}
	}
	if sep <= 0 || sep == len(args)-1 {
		fmt.Fprintln(out, "usage: \\kw <db> [db...] : <keyword>")
		return
	}
	dbs := args[:sep]
	kw := strings.Join(args[sep+1:], " ")
	var sb strings.Builder
	sb.WriteString("FOR ")
	for i, db := range dbs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "$v%d IN document(%q)/%s", i, db, rootOf(eng, db))
	}
	sb.WriteString("\nWHERE ")
	for i := range dbs {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "contains($v%d, %q, any)", i, kw)
	}
	sb.WriteString("\nRETURN ")
	for i := range dbs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "$v%d//entry_name", i)
	}
	fmt.Fprintln(out, "generated query:")
	fmt.Fprintln(out, sb.String())
	runQuery(eng, out, sb.String(), mode)
}

// explainAnalyzePrefix strips a leading case-insensitive "EXPLAIN
// ANALYZE" from a query, reporting whether it was present.
func explainAnalyzePrefix(query string) (string, bool) {
	trimmed := strings.TrimSpace(query)
	fields := strings.Fields(trimmed)
	if len(fields) < 2 || !strings.EqualFold(fields[0], "EXPLAIN") || !strings.EqualFold(fields[1], "ANALYZE") {
		return query, false
	}
	rest := strings.TrimSpace(trimmed[len(fields[0]):])
	rest = strings.TrimSpace(rest[len(fields[1]):])
	return rest, true
}

// rootOf guesses the root element of a database from its DTD tree.
func rootOf(eng *core.Engine, db string) string {
	tree, err := eng.DTDTree(db)
	if err != nil {
		return "hlx_n_sequence"
	}
	first := strings.SplitN(tree, "\n", 2)[0]
	return strings.Fields(first)[0]
}

func runQuery(eng *core.Engine, out io.Writer, query, mode string) {
	if strings.TrimSpace(query) == "" {
		return
	}
	ctx := context.Background()
	if queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, queryTimeout)
		defer cancel()
	}
	if rest, ok := explainAnalyzePrefix(query); ok {
		report, err := eng.ExplainAnalyze(ctx, rest)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, report)
		return
	}
	res, err := eng.QueryContext(ctx, query)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if mode == "xml" {
		fmt.Fprintln(out, res.XML())
	} else {
		fmt.Fprint(out, res.Table())
	}
	fmt.Fprintf(out, "(%d rows, %s mode)\n", len(res.Rows), res.Mode)
}
