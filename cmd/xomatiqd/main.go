// Command xomatiqd serves a XomatiQ warehouse over the network: an
// HTTP/JSON API on -http and the console line protocol on -line (which
// `xomatiq -connect host:port` attaches to). See internal/server for
// the wire surface and DESIGN.md §14 for the protocol.
//
//	xomatiqd -db warehouse.db -http :8080 -line :7979
//
// Admission control is engine-wide: -max-sessions caps concurrent
// sessions (HTTP-created and line connections alike), -max-inflight
// sheds queries past the cap with a 429-style overloaded error.
// SIGINT/SIGTERM drains gracefully: listeners close, in-flight queries
// finish (up to -drain), then the warehouse closes cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
	"xomatiq/internal/server"
)

func main() {
	dbPath := flag.String("db", "warehouse.db", "warehouse database file")
	httpAddr := flag.String("http", ":8080", "HTTP/JSON listen address (empty = disabled)")
	lineAddr := flag.String("line", ":7979", "console line-protocol listen address (empty = disabled)")
	maxSessions := flag.Int("max-sessions", 64, "max concurrent sessions (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 128, "max in-flight queries before shedding (0 = unlimited)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shredding goroutines for ingest")
	queryWorkers := flag.Int("query-workers", runtime.GOMAXPROCS(0), "goroutines per large sequential scan (1 = serial)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	preload := flag.String("preload", "", "load a flat file at startup: db=format:path (repeatable, comma-separated)")
	slow := flag.Duration("slow", 0, "slow-query log threshold (0 = disabled)")
	flag.Parse()

	cfg := core.NewConfig(*dbPath)
	cfg.LoadWorkers = *workers
	cfg.QueryWorkers = *queryWorkers
	cfg.MaxSessions = *maxSessions
	cfg.MaxInflightQueries = *maxInflight
	cfg.SlowQueryThreshold = *slow
	eng, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if eng.Recovered() {
		log.Print("warehouse recovered from WAL after unclean shutdown")
	}
	if err := runPreloads(eng, *preload); err != nil {
		eng.Close()
		log.Fatal(err)
	}

	srv := server.New(eng, server.Config{HTTPAddr: *httpAddr, LineAddr: *lineAddr})
	if err := srv.Start(); err != nil {
		eng.Close()
		log.Fatal(err)
	}
	if a := srv.HTTPAddr(); a != "" {
		log.Printf("http listening on %s", a)
	}
	if a := srv.LineAddr(); a != "" {
		log.Printf("line protocol listening on %s (attach: xomatiq -connect %s)", a, a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (drain %s)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	cancel()
	if err := eng.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// runPreloads handles -preload db=format:path[,db=format:path...]:
// register a file source and harness it before serving, so benchmarks
// and demos start against a warm warehouse.
func runPreloads(eng *core.Engine, spec string) error {
	if spec == "" {
		return nil
	}
	for _, one := range strings.Split(spec, ",") {
		db, rest, ok := strings.Cut(one, "=")
		if !ok {
			return fmt.Errorf("preload %q: want db=format:path", one)
		}
		format, path, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("preload %q: want db=format:path", one)
		}
		tr, ok := hounds.Registry[format]
		if !ok {
			return fmt.Errorf("preload %q: unknown format %q", one, format)
		}
		if err := eng.RegisterSource(db, hounds.FileSource{Path: path}, tr); err != nil {
			return fmt.Errorf("preload %s: %w", db, err)
		}
		n, err := eng.Harness(db)
		if err != nil {
			return fmt.Errorf("preload %s: %w", db, err)
		}
		log.Printf("preloaded %d entries into %s from %s", n, db, path)
	}
	return nil
}
