// Join query: the paper's Figure 10-12 scenario. Warehouse ENZYME and
// EMBL (invertebrates), then find the EMBL entries whose feature table
// carries an "EC number" qualifier matching a characterised enzyme —
// a join across two independently harvested databases.
//
// Run with:
//
//	go run ./examples/join_query
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xomatiq"
)

func main() {
	dir, err := os.MkdirTemp("", "xomatiq-join")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := xomatiq.Open(filepath.Join(dir, "warehouse.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// ENZYME first; its EC numbers seed the EMBL generator's qualifiers
	// so a third of the nucleotide entries link to characterised enzymes.
	opts := xomatiq.GenOptions{Seed: 4, ECLinkRate: 0.33}
	enzymes := xomatiq.GenEnzymes(150, opts)
	var ecIDs []string
	for _, e := range enzymes {
		ecIDs = append(ecIDs, e.ID)
	}
	var enzFlat, emblFlat bytes.Buffer
	if err := xomatiq.WriteEnzyme(&enzFlat, enzymes); err != nil {
		log.Fatal(err)
	}
	if err := xomatiq.WriteEMBL(&emblFlat, xomatiq.GenEMBL(500, "inv", ecIDs, opts)); err != nil {
		log.Fatal(err)
	}

	if err := eng.RegisterSource("hlx_enzyme.DEFAULT",
		xomatiq.NewSimSource("expasy", enzFlat.String()), xomatiq.EnzymeTransformer{}); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterSource("hlx_embl.inv",
		xomatiq.NewSimSource("ebi", emblFlat.String()), xomatiq.EMBLTransformer{}); err != nil {
		log.Fatal(err)
	}
	for _, db := range []string{"hlx_enzyme.DEFAULT", "hlx_embl.inv"} {
		n, err := eng.Harness(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("harnessed %4d entries into %s\n", n, db)
	}

	// Figure 11: the join. "The query checks if the attribute
	// qualifier_type has the value 'EC number' and if so compares the
	// value of the element qualifier with the enzyme_id from the ENZYME
	// database."
	query := `FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description`
	fmt.Println("\nquery (Figure 11):")
	fmt.Println(query)

	res, err := eng.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution mode: %s\n", res.Mode)
	fmt.Printf("generated SQL:\n  %s\n\n", res.SQL)
	fmt.Printf("EMBL entries linking to characterised enzymes: %d\n\n", len(res.Rows))
	limit := len(res.Rows)
	if limit > 10 {
		limit = 10
	}
	show := &xomatiq.Result{Columns: res.Columns, Rows: res.Rows[:limit]}
	fmt.Println(show.Table())
	if len(res.Rows) > limit {
		fmt.Printf("... and %d more rows\n", len(res.Rows)-limit)
	}
}
