// Quickstart: warehouse a small ENZYME dump and run the paper's Figure 9
// sub-tree query ("find enzymes whose catalytic activity mentions
// ketone, return their id and description").
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xomatiq"
)

func main() {
	dir, err := os.MkdirTemp("", "xomatiq-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a warehouse.
	eng, err := xomatiq.Open(filepath.Join(dir, "warehouse.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Generate a synthetic ENZYME flat file (the corpus always includes
	// the paper's Figure 2 sample entry, EC 1.14.17.3) and serve it from
	// a simulated remote source.
	entries := xomatiq.GenEnzymes(200, xomatiq.GenOptions{Seed: 1})
	var flat bytes.Buffer
	if err := xomatiq.WriteEnzyme(&flat, entries); err != nil {
		log.Fatal(err)
	}
	src := xomatiq.NewSimSource("expasy.org/enzyme", flat.String())

	// Register and harness: fetch -> XML transform -> DTD validate ->
	// shred into the relational engine.
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		log.Fatal(err)
	}
	n, err := eng.Harness("hlx_enzyme.DEFAULT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harnessed %d ENZYME entries into the warehouse\n\n", n)

	// The DTD tree the visual interface would show (Fig. 7a).
	tree, err := eng.DTDTree("hlx_enzyme.DEFAULT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DTD structure (query formulation panel):")
	fmt.Println(tree)

	// The Figure 9 query.
	query := `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description`
	fmt.Println("query:")
	fmt.Println(query)
	res, err := eng.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution mode: %s\ngenerated SQL: %s\n\n", res.Mode, res.SQL)
	fmt.Println(res.Table())

	// Click-through: reconstruct the full XML of the first hit (the
	// right-hand panel of Fig. 7b).
	if len(res.Rows) > 0 {
		xml, err := eng.Document("hlx_enzyme.DEFAULT", res.Rows[0][0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("document for first hit:")
		fmt.Println(xml)
	}
}
