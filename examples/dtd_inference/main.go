// DTD inference: the Data Hounds authoring workflow. "Writing the
// XML-transformer module for the ENZYME database involves specifying a
// DTD for the data in the flat-file" — this example shows the schema-
// discovery step that bootstraps such a DTD: infer one from sample XML
// instances, validate the instances against it, and render the structure
// tree a curator would review before hand-tuning.
//
// Run with:
//
//	go run ./examples/dtd_inference
package main

import (
	"fmt"
	"log"

	"xomatiq/internal/bio"
	"xomatiq/internal/dtd"
	"xomatiq/internal/hounds"
	"xomatiq/internal/xmldoc"
)

func main() {
	// Pretend these XML entries arrived from a new, undocumented source:
	// transform a few generated ENZYME entries and forget the DTD.
	entries := bio.GenEnzymes(25, bio.GenOptions{Seed: 2})
	var docs []*xmldoc.Document
	for _, e := range entries {
		docs = append(docs, hounds.EnzymeEntryToXML(e))
	}

	// Step 1: infer a DTD from the instances.
	inferred := dtd.Infer(docs...)
	fmt.Println("inferred DTD:")
	fmt.Println(inferred.String())

	// Step 2: the inferred DTD validates everything it was derived from.
	bad := 0
	for _, d := range docs {
		if errs := inferred.Validate(d); len(errs) > 0 {
			bad++
		}
	}
	fmt.Printf("validation against inferred DTD: %d/%d documents valid\n\n", len(docs)-bad, len(docs))

	// Step 3: the structure tree the curator reviews (the same view the
	// XomatiQ query panel shows).
	fmt.Println("structure tree:")
	fmt.Println(inferred.Tree())

	// Step 4: compare against the hand-written Figure 5 DTD — inference
	// recovers the same element vocabulary.
	official := dtd.MustParse(hounds.EnzymeDTD)
	inferredNames := map[string]bool{}
	for _, n := range inferred.ElementNames() {
		inferredNames[n] = true
	}
	missing := 0
	for _, n := range official.ElementNames() {
		if !inferredNames[n] {
			fmt.Printf("not observed in the sample: <%s>\n", n)
			missing++
		}
	}
	if missing == 0 {
		fmt.Println("inferred vocabulary covers every element of the paper's Figure 5 DTD")
	} else {
		fmt.Printf("(%d rare element(s) absent from this sample; a larger harvest would surface them)\n", missing)
	}

	// Step 5: a document violating the schema is caught.
	mutant := xmldoc.MustParse(`<hlx_enzyme><db_entry><bogus_field>x</bogus_field></db_entry></hlx_enzyme>`)
	errs := inferred.Validate(mutant)
	if len(errs) == 0 {
		log.Fatal("mutant should not validate")
	}
	fmt.Printf("\nmutant document rejected: %v\n", errs[0])
}
