// Update triggers: the Data Hounds incremental-update cycle. A remote
// source publishes new versions of the ENZYME databank; the hounds diff
// each version against the warehouse, apply only the delta, and fire
// triggers to subscribed applications ("Once the changes have been
// committed to the local warehouse, the Data Hounds sends out triggers
// to related applications").
//
// Run with:
//
//	go run ./examples/update_triggers
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xomatiq"
)

func flatten(entries []*xomatiq.EnzymeEntry) string {
	var buf bytes.Buffer
	if err := xomatiq.WriteEnzyme(&buf, entries); err != nil {
		log.Fatal(err)
	}
	return buf.String()
}

func main() {
	dir, err := os.MkdirTemp("", "xomatiq-triggers")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := xomatiq.Open(filepath.Join(dir, "warehouse.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A downstream application subscribes to warehouse changes.
	eng.Bus().Subscribe(func(t xomatiq.Trigger) {
		c := t.Change
		fmt.Printf("  [trigger] %s %s: +%d added, ~%d modified, -%d removed\n",
			c.DB, c.Version, len(c.Added), len(c.Modified), len(c.Removed))
	})

	// Version 1 of the remote databank.
	entries := xomatiq.GenEnzymes(50, xomatiq.GenOptions{Seed: 6})
	src := xomatiq.NewSimSource("expasy.org/enzyme", flatten(entries))
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial harness:")
	if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
		log.Fatal(err)
	}

	// The remote publishes version 2: one entry curated (new comment),
	// one withdrawn, two new enzymes characterised.
	v2 := make([]*xomatiq.EnzymeEntry, len(entries))
	copy(v2, entries)
	curated := *v2[10]
	curated.Comments = append([]string{"Revised substrate specificity after curation."}, curated.Comments...)
	v2[10] = &curated
	withdrawn := v2[20].ID
	v2 = append(v2[:20], v2[21:]...)
	v2 = append(v2,
		&xomatiq.EnzymeEntry{ID: "6.1.1.99", Description: []string{"Novel ligase."}, Cofactors: []string{"Zinc"}},
		&xomatiq.EnzymeEntry{ID: "6.1.2.99", Description: []string{"Novel synthetase."}})
	src.Publish(flatten(v2))

	fmt.Printf("\nremote published v2 (withdrew %s):\n", withdrawn)
	cs, err := eng.Update("hlx_enzyme.DEFAULT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied delta: added=%v modified=%v removed=%v\n",
		cs.Added, cs.Modified, cs.Removed)

	// Queries immediately see the delta.
	res, err := eng.Query(`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//comment, "curation")
RETURN $a//enzyme_id, $a//enzyme_description`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nentries mentioning 'curation' after the update:")
	fmt.Println(res.Table())

	// A third fetch with no remote change applies nothing.
	fmt.Println("re-fetch with no remote change:")
	cs, err = eng.Update("hlx_enzyme.DEFAULT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  delta empty: %v (nothing left out, nothing added twice)\n", cs.Empty())
}
