// Keyword search: the paper's Figure 8 scenario. Warehouse EMBL
// (invertebrates division) and Swiss-Prot, then search both for the cell
// division cycle protein cdc6 and return the matching accession numbers.
//
// Run with:
//
//	go run ./examples/keyword_search
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xomatiq"
)

func main() {
	dir, err := os.MkdirTemp("", "xomatiq-keyword")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := xomatiq.Open(filepath.Join(dir, "warehouse.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Two sequence databases; ~3% of entries mention cdc6.
	opts := xomatiq.GenOptions{Seed: 8, Cdc6Rate: 0.03}
	var emblFlat, sprotFlat bytes.Buffer
	if err := xomatiq.WriteEMBL(&emblFlat, xomatiq.GenEMBL(400, "inv", nil, opts)); err != nil {
		log.Fatal(err)
	}
	if err := xomatiq.WriteSProt(&sprotFlat, xomatiq.GenSProt(400, opts)); err != nil {
		log.Fatal(err)
	}
	for _, reg := range []struct {
		db   string
		flat string
		tr   xomatiq.Transformer
	}{
		{"hlx_embl.inv", emblFlat.String(), xomatiq.EMBLTransformer{}},
		{"hlx_sprot.all", sprotFlat.String(), xomatiq.SProtTransformer{}},
	} {
		if err := eng.RegisterSource(reg.db, xomatiq.NewSimSource(reg.db, reg.flat), reg.tr); err != nil {
			log.Fatal(err)
		}
		n, err := eng.Harness(reg.db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("harnessed %4d entries into %s\n", n, reg.db)
	}

	// Figure 8: keyword search across both databases. contains(...,
	// "cdc6", any) matches the keyword anywhere in each entry.
	query := `FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number`
	fmt.Println("\nquery (Figure 8):")
	fmt.Println(query)

	res, err := eng.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution mode: %s\n", res.Mode)
	fmt.Printf("matches: %d (sprot x embl pairs mentioning cdc6)\n\n", len(res.Rows))
	limit := len(res.Rows)
	if limit > 12 {
		limit = 12
	}
	show := &xomatiq.Result{Columns: res.Columns, Rows: res.Rows[:limit]}
	fmt.Println(show.Table())
	if len(res.Rows) > limit {
		fmt.Printf("... and %d more rows\n\n", len(res.Rows)-limit)
	}

	// The same result as XML, for handing to downstream gRNA tools.
	fmt.Println("first rows as XML:")
	fmt.Println(show.XML())
}
