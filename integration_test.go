// Integration tests over the public facade: the end-to-end flows a
// downstream gRNA application would run, exercised through package
// xomatiq only.
package xomatiq_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"xomatiq"
)

func publicEngine(t *testing.T) *xomatiq.Engine {
	t.Helper()
	eng, err := xomatiq.Open(filepath.Join(t.TempDir(), "pub.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func flatten(t *testing.T, entries []*xomatiq.EnzymeEntry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := xomatiq.WriteEnzyme(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestPublicAPIQuickstartFlow walks the README quick-start end to end.
func TestPublicAPIQuickstartFlow(t *testing.T) {
	eng := publicEngine(t)
	entries := xomatiq.GenEnzymes(50, xomatiq.GenOptions{Seed: 1})
	src := xomatiq.NewSimSource("expasy", flatten(t, entries))
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		t.Fatal(err)
	}
	n, err := eng.Harness("hlx_enzyme.DEFAULT")
	if err != nil || n != 51 {
		t.Fatalf("Harness = %d, %v", n, err)
	}
	res, err := eng.Query(`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != xomatiq.ModeSQL {
		t.Errorf("Mode = %v", res.Mode)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(res.Table(), "enzyme_id") {
		t.Error("Table() missing header")
	}
	if !strings.Contains(res.XML(), "<results>") {
		t.Error("XML() missing root")
	}
	doc, err := eng.Document("hlx_enzyme.DEFAULT", res.Rows[0][0])
	if err != nil || !strings.Contains(doc, "<db_entry>") {
		t.Errorf("Document = %v", err)
	}
}

// TestPublicAPIThreeDatabaseScenario loads all three paper databases and
// runs each figure's query.
func TestPublicAPIThreeDatabaseScenario(t *testing.T) {
	eng := publicEngine(t)
	opts := xomatiq.GenOptions{Seed: 7, Cdc6Rate: 0.1, ECLinkRate: 0.5}
	enzymes := xomatiq.GenEnzymes(20, opts)
	var ids []string
	for _, e := range enzymes {
		ids = append(ids, e.ID)
	}
	var embl, sprot bytes.Buffer
	if err := xomatiq.WriteEMBL(&embl, xomatiq.GenEMBL(60, "inv", ids, opts)); err != nil {
		t.Fatal(err)
	}
	if err := xomatiq.WriteSProt(&sprot, xomatiq.GenSProt(60, opts)); err != nil {
		t.Fatal(err)
	}
	regs := []struct {
		db, flat string
		tr       xomatiq.Transformer
	}{
		{"hlx_enzyme.DEFAULT", flatten(t, enzymes), xomatiq.EnzymeTransformer{}},
		{"hlx_embl.inv", embl.String(), xomatiq.EMBLTransformer{}},
		{"hlx_sprot.all", sprot.String(), xomatiq.SProtTransformer{}},
	}
	for _, r := range regs {
		if err := eng.RegisterSource(r.db, xomatiq.NewSimSource(r.db, r.flat), r.tr); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Harness(r.db); err != nil {
			t.Fatalf("harness %s: %v", r.db, err)
		}
	}
	queries := []string{
		// Figure 8.
		`FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number`,
		// Figure 9.
		`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description`,
		// Figure 11.
		`FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description`,
	}
	for i, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("query %d returned no rows", i)
		}
	}
}

// TestPublicAPIUpdateCycle exercises the incremental update + trigger
// flow through the facade.
func TestPublicAPIUpdateCycle(t *testing.T) {
	eng := publicEngine(t)
	entries := xomatiq.GenEnzymes(10, xomatiq.GenOptions{Seed: 4})
	src := xomatiq.NewSimSource("expasy", flatten(t, entries))
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		t.Fatal(err)
	}
	var fired []xomatiq.ChangeSet
	eng.Bus().Subscribe(func(tr xomatiq.Trigger) { fired = append(fired, tr.Change) })
	if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
		t.Fatal(err)
	}
	v2 := append(entries, &xomatiq.EnzymeEntry{ID: "8.8.8.8", Description: []string{"New."}})
	src.Publish(flatten(t, v2))
	cs, err := eng.Update("hlx_enzyme.DEFAULT")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Added) != 1 || cs.Added[0] != "8.8.8.8" {
		t.Errorf("ChangeSet = %+v", cs)
	}
	if len(fired) != 2 {
		t.Errorf("triggers = %d", len(fired))
	}
}

// TestPublicAPINoIndexConfig verifies correctness is preserved with all
// secondary indexes disabled (the E8 ablation configuration).
func TestPublicAPINoIndexConfig(t *testing.T) {
	eng, err := xomatiq.Open(filepath.Join(t.TempDir(), "noidx.db"),
		xomatiq.WithoutIndexes(), xomatiq.WithoutKeywordIndex())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	entries := xomatiq.GenEnzymes(20, xomatiq.GenOptions{Seed: 9})
	src := xomatiq.NewSimSource("expasy", flatten(t, entries))
	if err := eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Harness("hlx_enzyme.DEFAULT"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//enzyme_id = "1.14.17.3"
RETURN $a//enzyme_description`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0], "Peptidylglycine") {
		t.Errorf("no-index query = %v", res.Rows)
	}
}
