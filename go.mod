module xomatiq

go 1.22
