// Package xomatiq is the public API of the XomatiQ reproduction: an
// "all-XML" biological data management system that warehouses
// heterogeneous biological databases as XML, shreds them into an
// embedded relational engine, and answers XQuery-style FLWR queries by
// translating them to SQL (Cruz, Laud, Bhowmick — "XomatiQ: Living With
// Genomes, Proteomes, Relations and a Little Bit of XML", ICDE 2003).
//
// A minimal session:
//
//	eng, _ := xomatiq.Open("warehouse.db")
//	defer eng.Close()
//	src := xomatiq.NewSimSource("expasy", enzymeFlatFileText)
//	eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{})
//	eng.Harness("hlx_enzyme.DEFAULT")
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	res, _ := eng.QueryContext(ctx, `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
//	WHERE contains($a//catalytic_activity, "ketone")
//	RETURN $a//enzyme_id, $a//enzyme_description`)
//	fmt.Print(res.Table())
//
// Every lifecycle and query method has a Context variant
// (QueryContext, HarnessContext, UpdateContext); the plain forms run
// with context.Background(). Repeated queries are answered from an LRU
// plan cache that is invalidated automatically when a referenced
// database changes.
//
// The package re-exports the pieces a downstream application needs: the
// engine (internal/core), the Data Hounds sources and transformers
// (internal/hounds), and the flat-file toolkit with synthetic
// generators (internal/bio).
package xomatiq

import (
	"io"
	"time"

	"xomatiq/internal/bio"
	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/xq2sql"
)

// Engine is a XomatiQ warehouse instance: Data Hounds lifecycle plus the
// query pipeline.
type Engine = core.Engine

// Config tunes an Engine; use NewConfig for defaults.
type Config = core.Config

// Result is a materialised query result with XML and table renderers.
type Result = core.Result

// Mode reports which execution path answered a query.
type Mode = core.Mode

// Execution modes.
const (
	ModeSQL    = core.ModeSQL
	ModeNative = core.ModeNative
)

// PlanCacheStats snapshots the plan cache's effectiveness counters.
type PlanCacheStats = core.PlanCacheStats

// Snapshot is the unified observability surface: one typed view of
// every engine metric (buffer pool, WAL, executor work, query latency,
// ingest throughput, plan cache, physical state, warehouses, last
// load). Get one with Engine.Snapshot(); flatten it with Metrics().
type Snapshot = core.Snapshot

// FS abstracts the filesystem the warehouse lives on (see WithFS).
type FS = disk.FS

// Sentinel errors; match with errors.Is.
var (
	// ErrUnknownDatabase reports a reference to an unregistered database.
	ErrUnknownDatabase = core.ErrUnknownDatabase
	// ErrNoSource reports a harness/update with no registered source.
	ErrNoSource = core.ErrNoSource
	// ErrDuplicateSource reports a repeated RegisterSource.
	ErrDuplicateSource = core.ErrDuplicateSource
	// ErrUnsupported marks query shapes outside the XQ2SQL-translatable
	// subset (the engine answers them natively; Explain reports it).
	ErrUnsupported = xq2sql.ErrUnsupported
)

// NewConfig returns the default configuration for a warehouse at path.
func NewConfig(path string) Config { return core.NewConfig(path) }

// Option adjusts the configuration Open starts from.
type Option func(*Config)

// WithPoolPages sets the buffer pool capacity in pages.
func WithPoolPages(n int) Option { return func(c *Config) { c.PoolPages = n } }

// WithQueryWorkers caps intra-query scan parallelism (0 = GOMAXPROCS,
// 1 = serial). Results are byte-identical for any setting.
func WithQueryWorkers(n int) Option { return func(c *Config) { c.QueryWorkers = n } }

// WithAsync skips the WAL fsync on commit (bulk loads; trades the
// durability of the last commits for load throughput).
func WithAsync() Option { return func(c *Config) { c.Async = true } }

// WithoutIndexes skips the shredding schema's secondary indexes.
func WithoutIndexes() Option { return func(c *Config) { c.WithIndexes = false } }

// WithoutKeywordIndex disables inverted-index prefilters for contains().
func WithoutKeywordIndex() Option { return func(c *Config) { c.UseKeywordIndex = false } }

// WithPlanCacheSize sets the query plan cache capacity in entries;
// negative disables caching.
func WithPlanCacheSize(n int) Option { return func(c *Config) { c.PlanCacheSize = n } }

// WithLoadWorkers sets the harness ingest parallelism (0 = GOMAXPROCS).
// Warehouse contents are byte-identical for any setting.
func WithLoadWorkers(n int) Option { return func(c *Config) { c.LoadWorkers = n } }

// WithFS substitutes the filesystem backing the data file and WAL (nil
// means the real disk; fault-injection tests inject a failing FS).
func WithFS(fs FS) Option { return func(c *Config) { c.FS = fs } }

// WithSlowQueryThreshold enables the slow-query log: queries at or over
// d are written as JSON lines (query text, mode, plan-cache state,
// per-operator actuals) to the slow-query writer. Zero disables it.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *Config) { c.SlowQueryThreshold = d }
}

// WithSlowQueryLog directs the slow-query JSON lines to w (default
// os.Stderr). Only meaningful together with WithSlowQueryThreshold.
func WithSlowQueryLog(w io.Writer) Option { return func(c *Config) { c.SlowQueryLog = w } }

// Open opens (or creates) a warehouse at path with default settings,
// adjusted by options.
func Open(path string, opts ...Option) (*Engine, error) {
	cfg := core.NewConfig(path)
	for _, o := range opts {
		o(&cfg)
	}
	return core.Open(cfg)
}

// OpenConfig opens a warehouse from an explicit Config. It is the
// escape hatch for callers that build configuration programmatically or
// need a Config field no functional option covers; Open with options
// and OpenConfig are otherwise equivalent.
func OpenConfig(cfg Config) (*Engine, error) { return core.Open(cfg) }

// Source is a remote database location the Data Hounds can fetch.
type Source = hounds.Source

// FileSource reads a flat file from disk.
type FileSource = hounds.FileSource

// SimSource is an in-process simulated remote with versioned publishes.
type SimSource = hounds.SimSource

// NewSimSource creates a simulated remote with initial content.
func NewSimSource(name, content string) *SimSource { return hounds.NewSimSource(name, content) }

// Transformer converts one source format into XML documents.
type Transformer = hounds.Transformer

// The built-in transformers for the paper's three databases.
type (
	// EnzymeTransformer maps the ENZYME flat file (Figures 2-4) to the
	// Figure 5/6 XML.
	EnzymeTransformer = hounds.EnzymeTransformer
	// EMBLTransformer maps EMBL nucleotide entries to hlx_n_sequence.
	EMBLTransformer = hounds.EMBLTransformer
	// SProtTransformer maps Swiss-Prot protein entries to hlx_n_sequence.
	SProtTransformer = hounds.SProtTransformer
)

// Trigger and ChangeSet describe warehouse updates delivered on the bus.
type (
	Trigger   = hounds.Trigger
	ChangeSet = hounds.ChangeSet
)

// GenOptions controls the synthetic corpus generators.
type GenOptions = bio.GenOptions

// The flat-file entry types and their seeded generators/writers, used to
// stand in for the 2003 FTP dumps (see DESIGN.md).
type (
	EnzymeEntry = bio.EnzymeEntry
	EMBLEntry   = bio.EMBLEntry
	SProtEntry  = bio.SProtEntry
)

// Generator and writer re-exports for building source files.
var (
	GenEnzymes  = bio.GenEnzymes
	GenEMBL     = bio.GenEMBL
	GenSProt    = bio.GenSProt
	WriteEnzyme = bio.WriteEnzyme
	WriteEMBL   = bio.WriteEMBL
	WriteSProt  = bio.WriteSProt
)
