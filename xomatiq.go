// Package xomatiq is the public API of the XomatiQ reproduction: an
// "all-XML" biological data management system that warehouses
// heterogeneous biological databases as XML, shreds them into an
// embedded relational engine, and answers XQuery-style FLWR queries by
// translating them to SQL (Cruz, Laud, Bhowmick — "XomatiQ: Living With
// Genomes, Proteomes, Relations and a Little Bit of XML", ICDE 2003).
//
// A minimal session:
//
//	eng, _ := xomatiq.Open("warehouse.db")
//	defer eng.Close()
//	src := xomatiq.NewSimSource("expasy", enzymeFlatFileText)
//	eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{})
//	eng.Harness("hlx_enzyme.DEFAULT")
//	sess, _ := eng.NewSession(ctx,
//		xomatiq.WithDefaultDeadline(5*time.Second),
//		xomatiq.WithSessionTag("ingest-ui"))
//	defer sess.Close()
//	res, _ := sess.Query(ctx, `FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
//	WHERE contains($a//catalytic_activity, "ketone")
//	RETURN $a//enzyme_id, $a//enzyme_description`)
//	fmt.Print(res.Table())
//
// Queries enter the engine through a Session (Engine.NewSession): each
// session carries a default per-query deadline, an intra-query worker
// override, a slow-log tag and a cancellation scope, and shows up in
// Engine.Sessions listings with its own counters. The legacy
// Engine.Query/QueryContext surface remains as a thin wrapper over an
// implicit default session.
//
// Reads are MVCC snapshots: every query pins the engine epoch current at
// statement start and runs against immutable page versions, so bulk
// loads commit concurrently without ever blocking a reader. For
// multi-statement consistency, open an explicit transaction — all reads
// inside it see the single epoch pinned at Begin, and writes stay
// invisible to other sessions until Commit:
//
//	tx, _ := sess.Begin(ctx)
//	res1, _ := tx.Query(ctx, q1) // stable snapshot, concurrent loads invisible
//	res2, _ := tx.Query(ctx, q2) // same snapshot as res1
//	if _, err := tx.Harness(ctx, "hlx_enzyme.DEFAULT"); err != nil {
//		// a failed write rolled the transaction back;
//		// errors.Is(err, xomatiq.ErrTxConflict) means another writer won
//	}
//	tx.Commit() // publish everything atomically
//
// The first write escalates the transaction to the engine's single
// writer; losing that race — or writing after anything else committed —
// fails fast with ErrTxConflict (first committer wins; retry in a fresh
// transaction). The same transaction surface is reachable remotely via
// the /v1/tx endpoints and the console's \begin, \commit and \rollback
// commands.
//
// Results are wire-serializable — Result.JSON round-trips through
// ResultFromJSON byte-identically — and errors classify into a stable
// Code taxonomy (Error, ErrorCode) that survives serialization: a
// decoded remote error still matches the package sentinels under
// errors.Is. cmd/xomatiqd serves this API over HTTP and a console line
// protocol; see internal/server.
//
// Repeated queries are answered from an LRU plan cache that is
// invalidated automatically when a referenced database changes.
//
// The package re-exports the pieces a downstream application needs: the
// engine and sessions (internal/core), the Data Hounds sources and
// transformers (internal/hounds), and the flat-file toolkit with
// synthetic generators (internal/bio).
package xomatiq

import (
	"io"
	"time"

	"xomatiq/internal/bio"
	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
	"xomatiq/internal/storage/disk"
	"xomatiq/internal/xq2sql"
)

// Engine is a XomatiQ warehouse instance: Data Hounds lifecycle plus the
// query pipeline.
type Engine = core.Engine

// Config tunes an Engine; use NewConfig for defaults.
type Config = core.Config

// Result is a materialised query result with XML, table and
// wire-stable JSON renderers (Result.JSON / ResultFromJSON).
type Result = core.Result

// ResultFromJSON decodes a Result.JSON payload (the /v1/query body).
func ResultFromJSON(data []byte) (*Result, error) { return core.ResultFromJSON(data) }

// Mode reports which execution path answered a query.
type Mode = core.Mode

// Execution modes.
const (
	ModeSQL    = core.ModeSQL
	ModeNative = core.ModeNative
)

// PlanCacheStats snapshots the plan cache's effectiveness counters.
type PlanCacheStats = core.PlanCacheStats

// Snapshot is the unified observability surface: one typed view of
// every engine metric (buffer pool, WAL, executor work, query latency,
// ingest throughput, plan cache, physical state, warehouses, last
// load). Get one with Engine.Snapshot(); flatten it with Metrics().
type Snapshot = core.Snapshot

// FS abstracts the filesystem the warehouse lives on (see WithFS).
type FS = disk.FS

// Session is one client's query scope: per-session deadline, worker
// override, tag, cancellation scope and counters. Open with
// Engine.NewSession, always Close when done.
type Session = core.Session

// SessionOptions carries the state a session starts from; build with
// the WithSession*/WithDefaultDeadline functional options.
type SessionOptions = core.SessionOptions

// SessionOption adjusts SessionOptions.
type SessionOption = core.SessionOption

// SessionInfo is the wire-ready description of one open session.
type SessionInfo = core.SessionInfo

// Tx is an explicit transaction on a session: a pinned snapshot for
// reads, escalating to the engine's single writer on the first
// Harness/Update. Open with Session.Begin or Session.BeginTx; exactly
// one of Commit or Rollback finishes it (Session.Close rolls back an
// open transaction).
type Tx = core.Tx

// TxOptions tunes a transaction at Session.BeginTx (ReadOnly refuses
// writes with ErrTxReadOnly and can never conflict).
type TxOptions = core.TxOptions

// Session option re-exports (Engine.NewSession).
var (
	// WithDefaultDeadline sets the session's default per-query deadline.
	WithDefaultDeadline = core.WithDefaultDeadline
	// WithSessionQueryWorkers overrides intra-query scan parallelism for
	// the session (0 = engine default, 1 = serial).
	WithSessionQueryWorkers = core.WithSessionQueryWorkers
	// WithSessionMemBudget bounds hash-join build memory for the
	// session's queries, in bytes (0 = engine default); joins past the
	// budget spill to temp files with byte-identical results.
	WithSessionMemBudget = core.WithSessionMemBudget
	// WithSessionTag labels the session in listings and the slow log.
	WithSessionTag = core.WithSessionTag
)

// Error is the wire form of an engine error: a stable Code plus the
// message. It survives JSON serialization and keeps errors.Is
// compatibility with the sentinels on both ends of a connection.
type Error = core.Error

// Code is the stable, wire-safe error classification.
type Code = core.Code

// The error taxonomy; ErrorCode classifies any error into it.
const (
	CodeUnknownDatabase = core.CodeUnknownDatabase
	CodeNoSource        = core.CodeNoSource
	CodeDuplicateSource = core.CodeDuplicateSource
	CodeUnsupported     = core.CodeUnsupported
	CodeBadQuery        = core.CodeBadQuery
	CodeCanceled        = core.CodeCanceled
	CodeDeadline        = core.CodeDeadline
	CodeSessionClosed   = core.CodeSessionClosed
	CodeTooManySessions = core.CodeTooManySessions
	CodeOverloaded      = core.CodeOverloaded
	CodeTxConflict      = core.CodeTxConflict
	CodeTxClosed        = core.CodeTxClosed
	CodeTxActive        = core.CodeTxActive
	CodeTxReadOnly      = core.CodeTxReadOnly
	CodeInternal        = core.CodeInternal
)

// ErrorCode classifies any error into the taxonomy (CodeInternal for
// errors with no public classification).
func ErrorCode(err error) Code { return core.ErrorCode(err) }

// WireError converts any error into its wire form (nil stays nil).
func WireError(err error) *Error { return core.WireError(err) }

// ErrorFromJSON decodes a wire error; the result matches the code's
// sentinel under errors.Is.
func ErrorFromJSON(data []byte) (*Error, error) { return core.ErrorFromJSON(data) }

// Sentinel errors; match with errors.Is.
var (
	// ErrUnknownDatabase reports a reference to an unregistered database.
	ErrUnknownDatabase = core.ErrUnknownDatabase
	// ErrNoSource reports a harness/update with no registered source.
	ErrNoSource = core.ErrNoSource
	// ErrDuplicateSource reports a repeated RegisterSource.
	ErrDuplicateSource = core.ErrDuplicateSource
	// ErrUnsupported marks query shapes outside the XQ2SQL-translatable
	// subset (the engine answers them natively; Explain reports it).
	ErrUnsupported = xq2sql.ErrUnsupported
	// ErrBadQuery wraps parse failures of the query text.
	ErrBadQuery = core.ErrBadQuery
	// ErrSessionClosed reports a query on a closed session.
	ErrSessionClosed = core.ErrSessionClosed
	// ErrTooManySessions reports a NewSession refused by MaxSessions.
	ErrTooManySessions = core.ErrTooManySessions
	// ErrOverloaded reports a query shed by MaxInflightQueries; back off
	// and retry.
	ErrOverloaded = core.ErrOverloaded
	// ErrTxConflict reports a transaction write that lost the single-
	// writer race, or whose snapshot went stale before its first write
	// (first committer wins); retry in a fresh transaction.
	ErrTxConflict = core.ErrTxConflict
	// ErrTxClosed reports an operation on a committed or rolled-back
	// transaction.
	ErrTxClosed = core.ErrTxClosed
	// ErrTxActive reports Session.Begin with a transaction already open
	// (one per session).
	ErrTxActive = core.ErrTxActive
	// ErrTxReadOnly reports a write inside a TxOptions.ReadOnly
	// transaction.
	ErrTxReadOnly = core.ErrTxReadOnly
)

// NewConfig returns the default configuration for a warehouse at path.
func NewConfig(path string) Config { return core.NewConfig(path) }

// Option adjusts the configuration Open starts from.
type Option func(*Config)

// WithPoolPages sets the buffer pool capacity in pages.
func WithPoolPages(n int) Option { return func(c *Config) { c.PoolPages = n } }

// WithQueryWorkers caps intra-query scan parallelism (0 = GOMAXPROCS,
// 1 = serial). Results are byte-identical for any setting.
func WithQueryWorkers(n int) Option { return func(c *Config) { c.QueryWorkers = n } }

// WithQueryMemBudget bounds the memory a hash join may hold for its
// build side, in bytes (0 = unlimited). Overflowing partitions spill to
// temp files beside the warehouse and reload at probe time; results are
// byte-identical for any budget.
func WithQueryMemBudget(n int64) Option { return func(c *Config) { c.QueryMemBudget = n } }

// WithAsync skips the WAL fsync on commit (bulk loads; trades the
// durability of the last commits for load throughput).
func WithAsync() Option { return func(c *Config) { c.Async = true } }

// WithoutIndexes skips the shredding schema's secondary indexes.
func WithoutIndexes() Option { return func(c *Config) { c.WithIndexes = false } }

// WithoutKeywordIndex disables inverted-index prefilters for contains().
func WithoutKeywordIndex() Option { return func(c *Config) { c.UseKeywordIndex = false } }

// WithPlanCacheSize sets the query plan cache capacity in entries;
// negative disables caching.
func WithPlanCacheSize(n int) Option { return func(c *Config) { c.PlanCacheSize = n } }

// WithLoadWorkers sets the harness ingest parallelism (0 = GOMAXPROCS).
// Warehouse contents are byte-identical for any setting.
func WithLoadWorkers(n int) Option { return func(c *Config) { c.LoadWorkers = n } }

// WithFS substitutes the filesystem backing the data file and WAL (nil
// means the real disk; fault-injection tests inject a failing FS).
func WithFS(fs FS) Option { return func(c *Config) { c.FS = fs } }

// WithSlowQueryThreshold enables the slow-query log: queries at or over
// d are written as JSON lines (query text, mode, plan-cache state,
// per-operator actuals) to the slow-query writer. Zero disables it.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *Config) { c.SlowQueryThreshold = d }
}

// WithSlowQueryLog directs the slow-query JSON lines to w (default
// os.Stderr). Only meaningful together with WithSlowQueryThreshold.
func WithSlowQueryLog(w io.Writer) Option { return func(c *Config) { c.SlowQueryLog = w } }

// WithMaxSessions caps concurrent sessions; NewSession past the cap
// fails with ErrTooManySessions (0 = unlimited).
func WithMaxSessions(n int) Option { return func(c *Config) { c.MaxSessions = n } }

// WithMaxInflightQueries caps engine-wide concurrent queries; past the
// cap queries are shed with ErrOverloaded instead of queueing
// (0 = unlimited).
func WithMaxInflightQueries(n int) Option { return func(c *Config) { c.MaxInflightQueries = n } }

// WithMaxOpenTx caps engine-wide concurrently open transactions;
// Session.Begin past the cap fails with ErrOverloaded (0 = unlimited).
func WithMaxOpenTx(n int) Option { return func(c *Config) { c.MaxOpenTx = n } }

// Open opens (or creates) a warehouse at path with default settings,
// adjusted by options.
func Open(path string, opts ...Option) (*Engine, error) {
	cfg := core.NewConfig(path)
	for _, o := range opts {
		o(&cfg)
	}
	return core.Open(cfg)
}

// OpenConfig opens a warehouse from an explicit Config. It is the
// escape hatch for callers that build configuration programmatically or
// need a Config field no functional option covers; Open with options
// and OpenConfig are otherwise equivalent.
func OpenConfig(cfg Config) (*Engine, error) { return core.Open(cfg) }

// Source is a remote database location the Data Hounds can fetch.
type Source = hounds.Source

// FileSource reads a flat file from disk.
type FileSource = hounds.FileSource

// SimSource is an in-process simulated remote with versioned publishes.
type SimSource = hounds.SimSource

// NewSimSource creates a simulated remote with initial content.
func NewSimSource(name, content string) *SimSource { return hounds.NewSimSource(name, content) }

// Transformer converts one source format into XML documents.
type Transformer = hounds.Transformer

// The built-in transformers for the paper's three databases.
type (
	// EnzymeTransformer maps the ENZYME flat file (Figures 2-4) to the
	// Figure 5/6 XML.
	EnzymeTransformer = hounds.EnzymeTransformer
	// EMBLTransformer maps EMBL nucleotide entries to hlx_n_sequence.
	EMBLTransformer = hounds.EMBLTransformer
	// SProtTransformer maps Swiss-Prot protein entries to hlx_n_sequence.
	SProtTransformer = hounds.SProtTransformer
)

// Trigger and ChangeSet describe warehouse updates delivered on the bus.
type (
	Trigger   = hounds.Trigger
	ChangeSet = hounds.ChangeSet
)

// GenOptions controls the synthetic corpus generators.
type GenOptions = bio.GenOptions

// The flat-file entry types and their seeded generators/writers, used to
// stand in for the 2003 FTP dumps (see DESIGN.md).
type (
	EnzymeEntry = bio.EnzymeEntry
	EMBLEntry   = bio.EMBLEntry
	SProtEntry  = bio.SProtEntry
)

// Generator and writer re-exports for building source files.
var (
	GenEnzymes  = bio.GenEnzymes
	GenEMBL     = bio.GenEMBL
	GenSProt    = bio.GenSProt
	WriteEnzyme = bio.WriteEnzyme
	WriteEMBL   = bio.WriteEMBL
	WriteSProt  = bio.WriteSProt
)
