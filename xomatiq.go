// Package xomatiq is the public API of the XomatiQ reproduction: an
// "all-XML" biological data management system that warehouses
// heterogeneous biological databases as XML, shreds them into an
// embedded relational engine, and answers XQuery-style FLWR queries by
// translating them to SQL (Cruz, Laud, Bhowmick — "XomatiQ: Living With
// Genomes, Proteomes, Relations and a Little Bit of XML", ICDE 2003).
//
// A minimal session:
//
//	eng, _ := xomatiq.Open(xomatiq.NewConfig("warehouse.db"))
//	defer eng.Close()
//	src := xomatiq.NewSimSource("expasy", enzymeFlatFileText)
//	eng.RegisterSource("hlx_enzyme.DEFAULT", src, xomatiq.EnzymeTransformer{})
//	eng.Harness("hlx_enzyme.DEFAULT")
//	res, _ := eng.Query(`FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
//	WHERE contains($a//catalytic_activity, "ketone")
//	RETURN $a//enzyme_id, $a//enzyme_description`)
//	fmt.Print(res.Table())
//
// The package re-exports the pieces a downstream application needs: the
// engine (internal/core), the Data Hounds sources and transformers
// (internal/hounds), and the flat-file toolkit with synthetic
// generators (internal/bio).
package xomatiq

import (
	"xomatiq/internal/bio"
	"xomatiq/internal/core"
	"xomatiq/internal/hounds"
)

// Engine is a XomatiQ warehouse instance: Data Hounds lifecycle plus the
// query pipeline.
type Engine = core.Engine

// Config tunes an Engine; use NewConfig for defaults.
type Config = core.Config

// Result is a materialised query result with XML and table renderers.
type Result = core.Result

// Mode reports which execution path answered a query.
type Mode = core.Mode

// Execution modes.
const (
	ModeSQL    = core.ModeSQL
	ModeNative = core.ModeNative
)

// NewConfig returns the default configuration for a warehouse at path.
func NewConfig(path string) Config { return core.NewConfig(path) }

// Open opens (or creates) a warehouse.
func Open(cfg Config) (*Engine, error) { return core.Open(cfg) }

// Source is a remote database location the Data Hounds can fetch.
type Source = hounds.Source

// FileSource reads a flat file from disk.
type FileSource = hounds.FileSource

// SimSource is an in-process simulated remote with versioned publishes.
type SimSource = hounds.SimSource

// NewSimSource creates a simulated remote with initial content.
func NewSimSource(name, content string) *SimSource { return hounds.NewSimSource(name, content) }

// Transformer converts one source format into XML documents.
type Transformer = hounds.Transformer

// The built-in transformers for the paper's three databases.
type (
	// EnzymeTransformer maps the ENZYME flat file (Figures 2-4) to the
	// Figure 5/6 XML.
	EnzymeTransformer = hounds.EnzymeTransformer
	// EMBLTransformer maps EMBL nucleotide entries to hlx_n_sequence.
	EMBLTransformer = hounds.EMBLTransformer
	// SProtTransformer maps Swiss-Prot protein entries to hlx_n_sequence.
	SProtTransformer = hounds.SProtTransformer
)

// Trigger and ChangeSet describe warehouse updates delivered on the bus.
type (
	Trigger   = hounds.Trigger
	ChangeSet = hounds.ChangeSet
)

// GenOptions controls the synthetic corpus generators.
type GenOptions = bio.GenOptions

// The flat-file entry types and their seeded generators/writers, used to
// stand in for the 2003 FTP dumps (see DESIGN.md).
type (
	EnzymeEntry = bio.EnzymeEntry
	EMBLEntry   = bio.EMBLEntry
	SProtEntry  = bio.SProtEntry
)

// Generator and writer re-exports for building source files.
var (
	GenEnzymes  = bio.GenEnzymes
	GenEMBL     = bio.GenEMBL
	GenSProt    = bio.GenSProt
	WriteEnzyme = bio.WriteEnzyme
	WriteEMBL   = bio.WriteEMBL
	WriteSProt  = bio.WriteSProt
)
